"""Smoke + shape tests for every table/figure harness (quick mode).

Each test runs the harness the benchmarks run in full, at reduced size,
and asserts the qualitative result the paper reports — these are the
"does the reproduction still reproduce" regression tests.
"""

import numpy as np
import pytest

from repro.harness import fig1, fig4, fig5, fig6, fig7a, fig7b, fig10, table1, table2, table3, table4, table5


class TestTable1:
    def test_static_matrix(self):
        rows = table1.run()
        assert any(r[0] == "TurboAttention" for r in rows)
        text = table1.main()
        assert "TurboAttention" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def cells(self):
        return table2.run(quick=True)

    def test_full_grid(self, cells):
        assert len(cells) == 7 * 3 * 3  # methods x models x tasks

    def test_fp16_perfect(self, cells):
        fp16 = [c for c in cells if c.method == "fp16"]
        assert all(c.accuracy == 1.0 for c in fp16)

    def test_turbo4_near_lossless(self, cells):
        accs = [c.accuracy for c in cells if c.method == "turbo_4bit"]
        assert np.mean(accs) > 0.97

    def test_turbo_mixed_beats_kivi3(self, cells):
        avg = lambda m: np.mean([c.accuracy for c in cells if c.method == m])
        assert avg("turbo_mixed") > avg("kivi_3bit")

    def test_turbo_bits_lowest(self, cells):
        bits = lambda m: np.mean([c.effective_bits for c in cells if c.method == m])
        assert bits("turbo_4bit") < bits("kivi_4bit") < bits("gear_4bit")
        assert bits("turbo_mixed") < bits("kivi_3bit")

    def test_render(self, cells):
        text = table2.render_rows_smoke = table2.main(quick=True)
        assert "turbo_mixed" in text


class TestTable3:
    def test_block_size_robust(self):
        rows = table3.run(quick=True)
        accs = [r.accuracy for r in rows]
        assert max(accs) - min(accs) < 0.05  # paper: ~0.5 points spread


class TestTable4:
    def test_components_near_lossless(self):
        rows = {r.method: r.accuracy for r in table4.run(quick=True)}
        assert rows["fp16"] == 1.0
        assert rows["flashq_4bit"] >= 0.95
        assert rows["sas"] >= 0.97
        assert rows["flashq_4bit+sas"] >= 0.95


class TestTable5:
    def test_composition_graceful(self):
        rows = {r.method: r for r in table5.run(quick=True)}
        assert rows["fp16"].agreement == 1.0
        assert rows["fp16"].logit_kl == pytest.approx(0.0, abs=1e-12)
        # Composition is at most mildly super-additive on the smooth metric.
        combined = rows["llm_int8+turbo"].logit_kl
        parts = rows["llm_int8"].logit_kl + rows["turbo_only"].logit_kl
        assert combined < 2.0 * parts + 1e-6
        # Weight quantization alone stays high-fidelity on cosine.
        assert rows["llm_int8"].logit_cosine > 0.95


class TestFig1:
    @pytest.fixture(scope="class")
    def res(self):
        return fig1.run(quick=True)

    def test_attention_share_monotone(self, res):
        shares = [p.attention_share for p in res["fig1a"]]
        assert all(a < b for a, b in zip(shares, shares[1:]))

    def test_fig1b_kivi_dequant_dominant(self, res):
        assert res["fig1b"]["kivi4"]["dequant"] > 0.3
        assert "dequant" not in res["fig1b"]["fp16"] or res["fig1b"]["fp16"].get("dequant", 0) == 0

    def test_fig1c_turbo_total_lowest(self, res):
        totals = {m: d["total_s"] for m, d in res["fig1c"].items()}
        assert totals["turbo_mixed"] < totals["fp16"] < totals["kivi4"]


class TestFig4:
    def test_channel_outliers_visible(self):
        res = fig4.run(quick=True)
        for model in res:
            assert res[model]["k_channel"].outlier_ratio > 3.0

    def test_phi3_value_channel_heaviest(self):
        res = fig4.run(quick=True)
        assert (
            res["phi3ish"]["v_channel"].outlier_ratio
            > res["llama3ish"]["v_channel"].outlier_ratio
        )


class TestFig5:
    def test_fit_quality(self):
        res = fig5.run()
        assert res["paper_max_err"] < 5e-4
        np.testing.assert_allclose(res["refit_coeffs"], res["paper_coeffs"], atol=2e-3)


class TestFig6:
    @pytest.fixture(scope="class")
    def res(self):
        return fig6.run(quick=True)

    def test_turbo_always_above_one(self, res):
        for panel in res.values():
            for p in panel:
                if p.method.startswith("turbo") and p.speedup is not None:
                    assert p.speedup > 1.0

    def test_kivi_below_one_in_decode(self, res):
        for p in res["batch_sweep_decode"] + res["ctx_sweep_decode"]:
            if p.method in ("kivi4", "gear4") and p.speedup is not None:
                assert p.speedup < 1.0

    def test_prefill_speedup_in_paper_band(self, res):
        speedups = [
            p.speedup for p in res["ctx_sweep_prefill"]
            if p.method == "turbo_mixed" and p.speedup is not None
        ]
        assert all(1.2 < s < 2.0 for s in speedups)

    def test_fp16_ooms_somewhere(self, res):
        assert any(p.baseline_oom for p in res["ctx_sweep_decode"])


class TestFig7a:
    def test_max_throughput_ordering(self):
        res = fig7a.run(quick=True)
        best = {m: p.tokens_per_second for m, p in res.best.items()}
        assert best["turbo_mixed"] > best["kivi4"] > best["fp16"]
        assert 1.5 < best["turbo_mixed"] / best["fp16"] < 3.0


class TestFig7b:
    def test_priority_better_than_entropy_and_random_on_error(self):
        points = fig7b.run(quick=True)
        by = {}
        for p in points:
            by[(p.method, p.n_two_bit)] = p
        mid_counts = sorted({p.n_two_bit for p in points})[1:-1]
        pri = np.mean([by[("priority", n)].cache_error for n in mid_counts])
        ent = np.mean([by[("entropy", n)].cache_error for n in mid_counts])
        rand = np.mean([by[("random", n)].cache_error for n in mid_counts])
        assert pri <= ent + 1e-9
        assert pri <= rand + 1e-9

    def test_accuracy_degrades_with_more_2bit_heads(self):
        points = fig7b.run(quick=True)
        pri = sorted(
            [p for p in points if p.method == "priority"], key=lambda p: p.n_two_bit
        )
        assert pri[0].accuracy >= pri[-1].accuracy


class TestFig10:
    def test_channelwise_strictly_better(self):
        for r in fig10.run(quick=True):
            assert r.channelwise_error < r.tokenwise_error

    def test_error_monotone_in_bits(self):
        rows = fig10.run(quick=True)
        by_model = {}
        for r in rows:
            by_model.setdefault(r.model, {})[r.bits] = r
        for model, d in by_model.items():
            assert d[4].channelwise_error < d[3].channelwise_error < d[2].channelwise_error


class TestExtensionHarnesses:
    def test_serving_quick(self):
        from repro.harness import serving_sim

        cells = serving_sim.run(quick=True)
        by = {(c.scenario, c.method): c.metrics for c in cells}
        over = {m: by[("poisson_overload", m)] for m in serving_sim.SERVING_METHODS}
        assert (
            over["turbo_mixed"].throughput_tokens_per_s
            > over["fp16"].throughput_tokens_per_s
        )
        assert all(c.metrics.completed == c.metrics.total for c in cells)

    def test_cluster_quick(self):
        from repro.harness import cluster

        cells = cluster.run(quick=True)
        assert len(cells) == (
            2 * len(cluster.CLUSTER_METHODS) * len(cluster.CLUSTER_POLICIES)
        )
        assert all(c.metrics.completed == c.metrics.total for c in cells)
        by = {(c.workload, c.method, c.policy): c for c in cells}
        # KV-pressure-aware routing matches/beats round-robin tail TTFT
        # somewhere in the grid (acceptance claim).
        assert any(
            by[(w, m, "least_kv")].metrics.p99_ttft
            <= by[(w, m, "round_robin")].metrics.p99_ttft
            for w in ("steady", "bursty")
            for m in cluster.CLUSTER_METHODS
        )
        # Compression -> admitted concurrency at equal HBM budget.
        assert (
            by[("bursty", "turbo_mixed", "round_robin")].peak_concurrency
            > by[("bursty", "fp16", "round_robin")].peak_concurrency
        )

    def test_needle_quick(self):
        from repro.harness import needle

        res = needle.run(quick=True)
        assert all(r.accuracy == 1.0 for r in res["fp16"])
        mean = lambda name: np.mean([r.accuracy for r in res[name]])
        assert mean("turbo_2bit") > mean("kivi_2bit")

    def test_ablations_quick(self):
        from repro.harness import ablations

        res = ablations.run(quick=True)
        frontier = sorted(res["two_bit_fraction"], key=lambda p: p.fraction)
        bits = [p.effective_bits for p in frontier]
        assert all(a > b for a, b in zip(bits, bits[1:]))
        assert res["poly_degree"][2].max_error < 5e-4  # degree 3

"""Golden trace fixtures and the trace-diff replay layer.

Two small seeded runs — one engine, one faulted cluster — are checked
in as gzipped JSONL traces (``tests/fixtures/``).  Regenerating them
in-process and replaying through :func:`repro.sim.diff_traces` must
report zero divergence: any change to event ordering, time arithmetic,
or the trace schema shows up here as a *named first divergent event*,
not a silent behaviour drift.

Regenerate the fixtures after an intentional semantics change with::

    PYTHONPATH=src python tests/test_trace_replay.py
"""

from __future__ import annotations

import copy
import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterSimulator, DisaggConfig, FaultConfig
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import ServingEngine, poisson_workload
from repro.sim import (
    JsonlTraceSink,
    ListTraceSink,
    diff_traces,
    format_diff,
    read_trace,
    trace_digest,
    trace_file_digest,
)
from repro.sim.replay import diff_trace_files, trace_diff_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
GOLDEN_ENGINE = os.path.join(FIXTURES, "golden_engine_trace.jsonl.gz")
GOLDEN_CLUSTER = os.path.join(FIXTURES, "golden_cluster_trace.jsonl.gz")
GOLDEN_DISAGG = os.path.join(FIXTURES, "golden_disagg_trace.jsonl.gz")

GOLDEN_FAULTS = FaultConfig(
    seed=5, crash_rate=0.05, stall_rate=0.05,
    crash_downtime_s=6.0, stall_duration_s=4.0, stall_slowdown=3.0,
    request_timeout_s=30.0, max_retries=2, horizon_pad_s=10.0,
)

#: Migration-fault-heavy schedule for the disaggregated fixture: drops,
#: corruption, and link congestion all fire into a 1P+1D fleet.
GOLDEN_DISAGG_FAULTS = FaultConfig(
    seed=5, crash_rate=0.02, stall_rate=0.02,
    crash_downtime_s=6.0, stall_duration_s=4.0, stall_slowdown=3.0,
    request_timeout_s=60.0, max_retries=2,
    migration_drop_rate=0.2, migration_corrupt_rate=0.2,
    max_migration_retries=2, link_stall_rate=0.05,
    link_stall_duration_s=5.0, link_stall_slowdown=4.0,
    horizon_pad_s=10.0,
)


#: Literal digest pins for the checked-in fixtures.  The replay test
#: already catches *semantics* drifting from the fixture bytes; these
#: catch the fixture bytes themselves being regenerated (deliberately or
#: not) — a digest change here must be an explicit, reviewed edit.  The
#: vectorized-kernel and batched-scheduler rewrites were landed against
#: these exact values.
GOLDEN_DIGESTS = {
    "engine": "bf3ade229936d1e9b1ccbf1f481561e7",
    "cluster": "2c728878b9c6b685966d9d9d5d552c6e",
    "disagg": "57dbbfee56dcc9a3aec48ded26ee2ffe",
}


def _golden_workload():
    return poisson_workload(
        12, arrival_rate=5.0, prompt_range=(256, 2048), gen_range=(32, 128),
        rng=np.random.default_rng(3), n_sessions=6,
    )


def build_golden_engine_records():
    sink = ListTraceSink()
    model = ModelGeometry.phi3_medium()
    ServingEngine(model, METHODS["turbo4"], trace=sink).run(_golden_workload())
    return sink.records


def build_golden_cluster_records():
    sink = ListTraceSink()
    model = ModelGeometry.phi3_medium()
    ClusterSimulator(
        model,
        METHODS["turbo4"],
        ClusterConfig(n_replicas=2, policy="least_kv", faults=GOLDEN_FAULTS),
        trace=sink,
    ).run(_golden_workload())
    return sink.records


def build_golden_disagg_records():
    sink = ListTraceSink()
    model = ModelGeometry.phi3_medium()
    ClusterSimulator(
        model,
        METHODS["turbo4"],
        ClusterConfig(
            n_replicas=2, policy="least_kv", faults=GOLDEN_DISAGG_FAULTS,
            disagg=DisaggConfig(n_prefill=1, n_decode=1),
        ),
        trace=sink,
    ).run(_golden_workload())
    return sink.records


class TestGoldenTraces:
    @pytest.mark.parametrize(
        "path,builder",
        [
            (GOLDEN_ENGINE, build_golden_engine_records),
            (GOLDEN_CLUSTER, build_golden_cluster_records),
            (GOLDEN_DISAGG, build_golden_disagg_records),
        ],
        ids=["engine", "cluster", "disagg"],
    )
    def test_replay_matches_golden_with_zero_divergence(self, path, builder):
        golden = read_trace(path)
        fresh = builder()
        diff = diff_traces(golden, fresh)
        assert diff is None, "semantics drifted from the checked-in trace:\n" + \
            format_diff(diff, "golden", "fresh")
        assert trace_digest(fresh) == trace_file_digest(path)

    @pytest.mark.parametrize(
        "name,path",
        [
            ("engine", GOLDEN_ENGINE),
            ("cluster", GOLDEN_CLUSTER),
            ("disagg", GOLDEN_DISAGG),
        ],
    )
    def test_fixture_digest_is_pinned(self, name, path):
        """The fixture files match their hard-coded digests."""
        assert trace_file_digest(path) == GOLDEN_DIGESTS[name]

    def test_golden_cluster_exercises_the_fault_machinery(self):
        """The fixture is non-vacuous: faults actually fired into it."""
        kinds = {r["ev"] for r in read_trace(GOLDEN_CLUSTER)}
        assert "fault" in kinds and "arrival" in kinds

    def test_golden_disagg_exercises_the_migration_machinery(self):
        """The disagg fixture is non-vacuous: handoffs happened and at
        least one migration fault outcome is pinned into the bytes."""
        kinds = {r["ev"] for r in read_trace(GOLDEN_DISAGG)}
        assert {"migrate_send", "handoff_done", "prefill_ready"} <= kinds
        assert kinds & {"migrate_drop", "migrate_corrupt", "migrate_retry"}


class TestDiffReporting:
    def test_failing_diff_names_the_first_divergent_event(self):
        golden = read_trace(GOLDEN_CLUSTER)
        mutated = copy.deepcopy(golden)
        victim = next(
            i for i, r in enumerate(mutated) if r["action"] == "fire"
        )
        mutated[victim]["t"] += 1e-9
        diff = diff_traces(golden, mutated)
        assert diff is not None
        assert diff.index == victim
        assert diff.kind == golden[victim]["ev"]
        report = format_diff(diff, "golden", "mutated")
        assert "first divergent event" in report
        assert f"record {victim}" in report
        assert golden[victim]["ev"] in report
        # Context shows the shared run-up, then both sides of the split.
        assert "golden:" in report and "mutated:" in report

    def test_length_mismatch_is_a_divergence_at_the_tail(self):
        golden = read_trace(GOLDEN_ENGINE)
        truncated = golden[:-2]
        diff = diff_traces(golden, truncated)
        assert diff is not None
        assert diff.index == len(truncated)
        assert diff.a is not None and diff.b is None

    def test_identical_traces_have_no_diff(self):
        golden = read_trace(GOLDEN_ENGINE)
        assert diff_traces(golden, copy.deepcopy(golden)) is None
        assert format_diff(None) == "traces are byte-identical"


class TestTraceIO:
    def test_jsonl_roundtrip_plain_and_gzip(self, tmp_path):
        records = build_golden_engine_records()
        for name in ("t.jsonl", "t.jsonl.gz"):
            path = str(tmp_path / name)
            with JsonlTraceSink(path) as sink:
                for r in records:
                    # emit() assigns "i"; replay the original fields.
                    sink.emit({k: v for k, v in r.items() if k != "i"})
            assert read_trace(path) == records
            assert trace_file_digest(path) == trace_digest(records)

    def test_gzip_bytes_are_reproducible(self, tmp_path):
        """mtime is pinned, so even the compressed fixture bytes are
        stable — golden .gz files never churn in git without cause."""
        blobs = []
        for name in ("a.jsonl.gz", "b.jsonl.gz"):
            path = str(tmp_path / name)
            with JsonlTraceSink(path) as sink:
                sink.emit({"clock": "x", "action": "mark", "ev": "e", "t": 1.0,
                           "label": ""})
            with open(path, "rb") as fh:
                blobs.append(fh.read())
        assert blobs[0] == blobs[1]

    def test_trace_diff_cli_exit_codes(self, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        records = build_golden_engine_records()
        for path, recs in ((a, records), (b, records[:-1])):
            with JsonlTraceSink(path) as sink:
                for r in recs:
                    sink.emit({k: v for k, v in r.items() if k != "i"})
        assert trace_diff_main(a, a) == 0
        assert "byte-identical" in capsys.readouterr().out
        assert trace_diff_main(a, b) == 1
        assert "first divergent event" in capsys.readouterr().out
        assert diff_trace_files(a, b) is not None


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    os.makedirs(FIXTURES, exist_ok=True)
    for path, builder in (
        (GOLDEN_ENGINE, build_golden_engine_records),
        (GOLDEN_CLUSTER, build_golden_cluster_records),
        (GOLDEN_DISAGG, build_golden_disagg_records),
    ):
        records = builder()
        with JsonlTraceSink(path) as sink:
            for r in records:
                sink.emit({k: v for k, v in r.items() if k != "i"})
        print(f"wrote {path}: {len(records)} records, "
              f"digest {trace_file_digest(path)}")
    print("update GOLDEN_DIGESTS with the digests above")


if __name__ == "__main__":  # pragma: no cover
    regenerate()

"""Tests for the QuantizedTensor container and storage accounting."""

import numpy as np
import pytest

from repro.quant.qtensor import Granularity, QuantizedTensor


class TestFromFloat:
    def test_symmetric_roundtrip(self, rng):
        x = rng.standard_normal((8, 32))
        qt = QuantizedTensor.from_float(x, bits=8, symmetric=True)
        assert qt.symmetric and qt.zero_point is None
        assert np.max(np.abs(qt.dequantize() - x)) <= np.max(qt.scale) / 2 + 1e-12

    def test_asymmetric_roundtrip(self, rng):
        x = rng.standard_normal((8, 32)) + 4.0
        qt = QuantizedTensor.from_float(x, bits=4, symmetric=False, axis=-1)
        assert not qt.symmetric and qt.zero_point is not None
        assert np.max(np.abs(qt.dequantize() - x)) <= np.max(qt.scale) / 2 + 1e-12

    def test_shape_passthrough(self, rng):
        x = rng.standard_normal((3, 5, 7))
        qt = QuantizedTensor.from_float(x, bits=4, symmetric=False, axis=-1)
        assert qt.shape == (3, 5, 7)


class TestStorage:
    def test_symmetric_per_tensor(self, rng):
        x = rng.standard_normal((16, 16))
        qt = QuantizedTensor.from_float(x, bits=8, symmetric=True)
        assert qt.storage_bits == 256 * 8 + 16  # codes + one fp16 scale

    def test_asymmetric_per_channel(self, rng):
        x = rng.standard_normal((16, 16))
        qt = QuantizedTensor.from_float(x, bits=4, symmetric=False, axis=-2)
        # 4-bit codes + fp16 scale and zero per channel.
        assert qt.storage_bits == 256 * 4 + 16 * 16 * 2

    def test_effective_bits_includes_metadata(self, rng):
        x = rng.standard_normal((64, 64))
        qt = QuantizedTensor.from_float(x, bits=4, symmetric=False, axis=-2)
        # 64 fp16 scales + 64 fp16 zeros over 4096 elements = +0.5 bits.
        assert qt.effective_bits_per_value() == pytest.approx(4.5)

    def test_compression_ratio(self, rng):
        x = rng.standard_normal((64, 64))
        qt = QuantizedTensor.from_float(x, bits=4, symmetric=False, axis=-2)
        assert 3.0 < qt.compression_ratio(16) < 4.0

    def test_int8_scale_bits_option(self, rng):
        x = rng.standard_normal((16, 16))
        qt = QuantizedTensor.from_float(x, bits=4, symmetric=False, axis=-2)
        qt8 = QuantizedTensor(
            codes=qt.codes, scale=qt.scale, zero_point=qt.zero_point,
            bits=4, symmetric=False, scale_bits=8, zero_bits=8,
        )
        assert qt8.storage_bits < qt.storage_bits

    def test_granularity_metadata(self, rng):
        qt = QuantizedTensor.from_float(
            rng.standard_normal((4, 4)), bits=8, symmetric=True,
            granularity=Granularity.PER_BLOCK,
        )
        assert qt.granularity is Granularity.PER_BLOCK

    def test_empty_tensor(self):
        qt = QuantizedTensor(
            codes=np.zeros((0,), dtype=np.int8), scale=np.ones(()), bits=8, symmetric=True
        )
        assert qt.effective_bits_per_value() == 0.0
        assert qt.compression_ratio() == 1.0

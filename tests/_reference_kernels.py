"""Loop-oracle reference kernels for the bit-exactness property tests.

The production kernels batch their tile/span iteration (concatenated
integer GEMMs, precomputed running-max trajectories, BLAS-backed integer
matmul).  These oracles keep the naive shape — one tile or span per
Python-loop iteration, integer matmul in an int64 accumulator — so the
tests can assert the vectorized rewrites changed *nothing*, bit for bit.

They intentionally share the primitive helpers (``quantize_tile``, the
SAS/exp factory, the causal mask) with the production code: those are
elementwise and not under test; the *iteration structure* and the matmul
engine are.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.attention.masks import causal_mask_block
from repro.core.config import TurboConfig
from repro.core.prefill import _exp_fn, quantize_tile

__all__ = [
    "naive_int_matmul",
    "reference_decode_attend",
    "reference_prefill_attention",
]


def naive_int_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer matmul in an int64 accumulator — overflow-proof oracle."""
    return (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int32)


def reference_prefill_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    config: TurboConfig,
    causal: bool = True,
    scale: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-tile online-softmax prefill loop (Algorithm 1), no batching.

    Returns ``(output (hq, n, d), lse (hq, n))`` for the integer compute
    path (``config.quantize_matmuls`` must be on).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    hq, n, d = q.shape
    hkv, nk, _ = k.shape
    g = hq // hkv
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    offset = nk - n
    exp = _exp_fn(config)
    mc = config.int8_max_code
    qg = q.reshape(hkv, g, n, d)
    bq, bk = config.block_q, config.block_k

    bounds = [(s, min(s + bk, nk)) for s in range(0, nk, bk)]
    k_tiles = [quantize_tile(k[:, ks:ke, :], mc) for ks, ke in bounds]
    v_tiles = [quantize_tile(v[:, ks:ke, :], mc) for ks, ke in bounds]

    out = np.zeros((hkv, g, n, d), dtype=np.float64)
    lse = np.zeros((hkv, g, n), dtype=np.float64)
    for qs in range(0, n, bq):
        qe = min(qs + bq, n)
        qc, qsc = quantize_tile(qg[:, :, qs:qe, :], mc)
        m = np.full((hkv, g, qe - qs), -np.inf)
        l = np.zeros((hkv, g, qe - qs))
        acc = np.zeros((hkv, g, qe - qs, d))
        for j, (ks, ke) in enumerate(bounds):
            if causal and ks > qe - 1 + offset:
                break
            kc, ksc = k_tiles[j]
            vc, vsc = v_tiles[j]
            s_tile = (
                qsc
                * ksc[:, None, :, :]
                * naive_int_matmul(qc, np.swapaxes(kc, -1, -2)[:, None, :, :])
            ) * scale
            if causal:
                s_tile = s_tile + causal_mask_block(qs, qe - qs, ks, ke - ks, offset)
            m_new = np.maximum(m, s_tile.max(axis=-1))
            with np.errstate(invalid="ignore"):
                corr = exp(m - m_new)
            corr = np.where(np.isfinite(m), corr, 0.0)
            p = exp(s_tile - m_new[..., None])
            l = corr * l + p.sum(axis=-1)
            pc, psc = quantize_tile(p, mc)
            pv = psc * vsc[:, None, :, :] * naive_int_matmul(pc, vc[:, None, :, :])
            acc = corr[..., None] * acc + pv
            m = m_new
        safe_l = np.where(l > 0, l, 1.0)
        out[:, :, qs:qe, :] = acc / safe_l[..., None]
        lse[:, :, qs:qe] = np.where(l > 0, m + np.log(safe_l), -np.inf)
    return out.reshape(hq, n, d), lse.reshape(hq, n)


def reference_decode_attend(
    spans: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    q: np.ndarray,
    hkv: int,
    config: TurboConfig,
    scale: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-span decode loop (Algorithm 2), no batching.

    ``spans`` are ``(k_codes, v_codes, k_scale, v_scale)`` tuples as the
    decode kernel gathers them from the cache and buffer.  Returns
    ``(output (hq, d), lse (hq,))``.
    """
    q = np.asarray(q, dtype=np.float64)
    hq, d = q.shape
    g = hq // hkv
    if scale is None:
        scale = 1.0 / np.sqrt(d)
    exp = _exp_fn(config)
    mc = config.int8_max_code
    qc, q_scale = quantize_tile(q.reshape(hkv, g, 1, d), mc)

    m = np.full((hkv, g, 1), -np.inf)
    l = np.zeros((hkv, g, 1))
    acc = np.zeros((hkv, g, 1, d))
    for k_codes, v_codes, k_scale, v_scale in spans:
        s_tile = (
            q_scale
            * np.reshape(k_scale, (hkv, 1, 1, 1))
            * naive_int_matmul(qc, np.swapaxes(k_codes, -1, -2)[:, None, :, :])
        ) * scale
        m_new = np.maximum(m, s_tile.max(axis=-1))
        with np.errstate(invalid="ignore"):
            corr = exp(m - m_new)
        corr = np.where(np.isfinite(m), corr, 0.0)
        p = exp(s_tile - m_new[..., None])
        l = corr * l + p.sum(axis=-1)
        p_absmax = np.maximum(np.abs(p).max(axis=(-2, -1), keepdims=True), 1e-12)
        p_scale = p_absmax / float(mc)
        pc = np.clip(np.rint(p / p_scale), -mc, mc).astype(np.int8)
        pv = (
            p_scale
            * np.reshape(v_scale, (hkv, 1, 1, 1))
            * naive_int_matmul(pc, v_codes[:, None, :, :])
        )
        acc = corr[..., None] * acc + pv
        m = m_new
    safe_l = np.where(l > 0, l, 1.0)
    out = acc / safe_l[..., None]
    lse = np.where(l > 0, m + np.log(safe_l), -np.inf)
    return out.reshape(hq, d), lse.reshape(hq)

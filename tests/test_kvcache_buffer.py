"""Tests for the quantized KV cache and the enhanced decode buffer."""

import numpy as np
import pytest

from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import QuantizedKVCache
from repro.quant.schemes import quantize_symmetric


def _tile(rng, h=2, n=64, d=16):
    x = rng.standard_normal((h, n, d))
    codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
    return codes, scale


class TestQuantizedKVCache:
    def _cache(self, h=2, d=16, bits=4, block=64):
        return QuantizedKVCache(h, d, head_bits=np.full(h, bits), block_size=block)

    def test_append_and_seq_len(self, rng):
        cache = self._cache()
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        cache.append_block(kc, vc, ks, vs)
        assert cache.seq_len == 64 and len(cache) == 1
        cache.append_block(kc, vc, ks, vs)
        assert cache.seq_len == 128

    def test_partial_block(self, rng):
        cache = self._cache()
        kc, ks = _tile(rng, n=10)
        vc, vs = _tile(rng, n=10)
        cache.append_block(kc, vc, ks, vs)
        assert cache.seq_len == 10

    def test_oversized_block_raises(self, rng):
        cache = self._cache(block=32)
        kc, ks = _tile(rng, n=64)
        with pytest.raises(ValueError):
            cache.append_block(kc, kc, ks, ks)

    def test_shape_mismatch_raises(self, rng):
        cache = self._cache()
        kc, ks = _tile(rng, h=3)
        with pytest.raises(ValueError):
            cache.append_block(kc, kc, ks, ks)

    def test_head_bits_validation(self):
        with pytest.raises(ValueError):
            QuantizedKVCache(4, 16, head_bits=np.array([4, 4]), block_size=64)

    def test_iter_decompressed_roundtrip(self, rng):
        cache = self._cache(bits=8)  # 8-bit stage 2 on small ranges -> exact-ish
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        cache.append_block(kc, vc, ks, vs)
        k8, v8, kscale, vscale, length = next(cache.iter_decompressed())
        assert length == 64
        # INT8 stage-2 reconstruction error is bounded by one s_int step.
        assert np.abs(k8.astype(int) - kc.astype(int)).max() <= cache.blocks[0].k.s_int.max() + 1
        np.testing.assert_allclose(kscale, ks)

    def test_storage_and_compression(self, rng):
        cache = self._cache(bits=4)
        for _ in range(4):
            kc, ks = _tile(rng)
            vc, vs = _tile(rng)
            cache.append_block(kc, vc, ks, vs)
        assert 3.0 < cache.compression_ratio(16) < 4.0
        assert 4.0 < cache.effective_bits_per_value() < 5.5

    def test_mixed_bits_compression_better(self, rng):
        uniform = self._cache(bits=4)
        mixed = QuantizedKVCache(2, 16, head_bits=np.array([2, 4]), block_size=64)
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        uniform.append_block(kc, vc, ks, vs)
        mixed.append_block(kc, vc, ks, vs)
        assert mixed.storage_bits < uniform.storage_bits

    def test_empty_cache(self):
        cache = self._cache()
        assert cache.seq_len == 0
        assert cache.storage_bits == 0
        assert cache.compression_ratio() == 1.0


class TestDecodeBuffer:
    def _buffer(self, h=2, d=16, cap=8):
        return DecodeBuffer(
            h, d, capacity=cap,
            k_scale=np.full((h, 1, 1), 0.05),
            v_scale=np.full((h, 1, 1), 0.05),
        )

    def test_append_and_len(self, rng):
        buf = self._buffer()
        for i in range(5):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))
            assert len(buf) == i + 1

    def test_full_raises(self, rng):
        buf = self._buffer(cap=2)
        for _ in range(2):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))
        assert buf.is_full
        with pytest.raises(RuntimeError):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))

    def test_quantization_uses_frozen_scale(self):
        buf = self._buffer()
        k = np.full((2, 16), 0.5)  # 0.5 / 0.05 = code 10
        buf.append(k, k)
        k_codes, _ = buf.codes()
        assert np.all(k_codes == 10)

    def test_outlier_clamping(self):
        buf = self._buffer()
        k = np.full((2, 16), 100.0)  # would be code 2000 -> clamped to 119
        buf.append(k, np.zeros((2, 16)))
        k_codes, _ = buf.codes()
        assert np.all(k_codes == 119)
        assert buf.clamped_total == 2 * 16

    def test_drain_clears(self, rng):
        buf = self._buffer()
        for _ in range(3):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))
        k_codes, v_codes, k_scale, v_scale = buf.drain()
        assert k_codes.shape == (2, 3, 16)
        assert len(buf) == 0
        np.testing.assert_allclose(k_scale, 0.05)

    def test_drain_returns_copy(self, rng):
        buf = self._buffer()
        buf.append(np.ones((2, 16)), np.ones((2, 16)))
        k_codes, *_ = buf.drain()
        buf.append(np.full((2, 16), -1.0), np.ones((2, 16)))
        assert np.all(k_codes == 20)  # unchanged by later appends

    def test_extend(self, rng):
        buf = self._buffer()
        buf.extend(rng.standard_normal((2, 4, 16)), rng.standard_normal((2, 4, 16)))
        assert len(buf) == 4

    def test_storage_bits(self, rng):
        buf = self._buffer()
        buf.append(np.ones((2, 16)), np.ones((2, 16)))
        # 2 tensors * 1 token * 2 heads * 16 dims * 8 bits + 2 scales * 2 heads * 16.
        assert buf.storage_bits == 2 * 2 * 16 * 8 + 2 * 2 * 16

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecodeBuffer(1, 4, capacity=0, k_scale=np.ones((1, 1, 1)), v_scale=np.ones((1, 1, 1)))

"""Tests for the quantized KV cache and the enhanced decode buffer."""

import numpy as np
import pytest

from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import QuantizedKVCache
from repro.quant.schemes import quantize_symmetric


def _tile(rng, h=2, n=64, d=16):
    x = rng.standard_normal((h, n, d))
    codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
    return codes, scale


class TestQuantizedKVCache:
    def _cache(self, h=2, d=16, bits=4, block=64):
        return QuantizedKVCache(h, d, head_bits=np.full(h, bits), block_size=block)

    def test_append_and_seq_len(self, rng):
        cache = self._cache()
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        cache.append_block(kc, vc, ks, vs)
        assert cache.seq_len == 64 and len(cache) == 1
        cache.append_block(kc, vc, ks, vs)
        assert cache.seq_len == 128

    def test_partial_block(self, rng):
        cache = self._cache()
        kc, ks = _tile(rng, n=10)
        vc, vs = _tile(rng, n=10)
        cache.append_block(kc, vc, ks, vs)
        assert cache.seq_len == 10

    def test_oversized_block_raises(self, rng):
        cache = self._cache(block=32)
        kc, ks = _tile(rng, n=64)
        with pytest.raises(ValueError):
            cache.append_block(kc, kc, ks, ks)

    def test_shape_mismatch_raises(self, rng):
        cache = self._cache()
        kc, ks = _tile(rng, h=3)
        with pytest.raises(ValueError):
            cache.append_block(kc, kc, ks, ks)

    def test_head_bits_validation(self):
        with pytest.raises(ValueError):
            QuantizedKVCache(4, 16, head_bits=np.array([4, 4]), block_size=64)

    def test_iter_decompressed_roundtrip(self, rng):
        cache = self._cache(bits=8)  # 8-bit stage 2 on small ranges -> exact-ish
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        cache.append_block(kc, vc, ks, vs)
        k8, v8, kscale, vscale, length = next(cache.iter_decompressed())
        assert length == 64
        # INT8 stage-2 reconstruction error is bounded by one s_int step.
        assert np.abs(k8.astype(int) - kc.astype(int)).max() <= cache.blocks[0].k.s_int.max() + 1
        np.testing.assert_allclose(kscale, ks)

    def test_storage_and_compression(self, rng):
        cache = self._cache(bits=4)
        for _ in range(4):
            kc, ks = _tile(rng)
            vc, vs = _tile(rng)
            cache.append_block(kc, vc, ks, vs)
        assert 3.0 < cache.compression_ratio(16) < 4.0
        assert 4.0 < cache.effective_bits_per_value() < 5.5

    def test_mixed_bits_compression_better(self, rng):
        uniform = self._cache(bits=4)
        mixed = QuantizedKVCache(2, 16, head_bits=np.array([2, 4]), block_size=64)
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        uniform.append_block(kc, vc, ks, vs)
        mixed.append_block(kc, vc, ks, vs)
        assert mixed.storage_bits < uniform.storage_bits

    def test_empty_cache(self):
        cache = self._cache()
        assert cache.seq_len == 0
        assert cache.storage_bits == 0
        assert cache.compression_ratio() == 1.0

    def test_set_head_bits_affects_future_blocks_only(self, rng):
        cache = self._cache(bits=2)
        kc, ks = _tile(rng)
        vc, vs = _tile(rng)
        cache.append_block(kc, vc, ks, vs)
        cache.set_head_bits(np.full(2, 8, dtype=np.int32))
        cache.append_block(kc, vc, ks, vs)
        assert cache.blocks[0].k.bits.max() == 2  # existing block untouched
        assert cache.blocks[1].k.bits.min() == 8
        assert cache.blocks[1].storage_bits > cache.blocks[0].storage_bits

    def test_set_head_bits_validation(self):
        cache = self._cache()
        with pytest.raises(ValueError):
            cache.set_head_bits(np.array([4, 4, 4]))  # wrong head count
        with pytest.raises(ValueError):
            cache.set_head_bits(np.array([4, 7]))  # illegal width

    def test_mixed_width_blocks_serialize(self, rng):
        """Escalation mid-stream leaves blocks of different widths in one
        cache; the serializer must round-trip them bit-for-bit."""
        from repro.core import TurboAttention, TurboConfig
        from repro.core.serialization import state_from_arrays, state_to_arrays
        from repro.guard import EscalationConfig, GuardConfig

        cfg = TurboConfig(block_q=16, block_k=16, buffer_size=8, kv_bits=4)
        guard = GuardConfig(
            escalation=EscalationConfig(quality_bits=8, patience=1)
        )
        turbo = TurboAttention(cfg, guard=guard)
        h, d = 2, 16
        _, st = turbo.prefill(*(rng.standard_normal((h, 16, d)) for _ in range(3)))
        for _ in range(24):
            turbo.decode_step(
                rng.standard_normal((h, d)), rng.standard_normal((h, d)),
                25.0 + rng.standard_normal((h, d)), st,
            )
        widths = {int(b.k.bits.max()) for b in st.cache.blocks}
        assert len(widths) > 1  # genuinely mixed-width cache
        restored = state_from_arrays(state_to_arrays(st))
        assert restored.seq_len == st.seq_len
        for a, b in zip(st.cache.blocks, restored.cache.blocks):
            np.testing.assert_array_equal(a.k.bits, b.k.bits)
            np.testing.assert_array_equal(a.k.codes, b.k.codes)
            np.testing.assert_array_equal(a.v.codes, b.v.codes)


class TestDecodeBuffer:
    def _buffer(self, h=2, d=16, cap=8):
        return DecodeBuffer(
            h, d, capacity=cap,
            k_scale=np.full((h, 1, 1), 0.05),
            v_scale=np.full((h, 1, 1), 0.05),
        )

    def test_append_and_len(self, rng):
        buf = self._buffer()
        for i in range(5):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))
            assert len(buf) == i + 1

    def test_full_raises(self, rng):
        buf = self._buffer(cap=2)
        for _ in range(2):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))
        assert buf.is_full
        with pytest.raises(RuntimeError):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))

    def test_quantization_uses_frozen_scale(self):
        buf = self._buffer()
        k = np.full((2, 16), 0.5)  # 0.5 / 0.05 = code 10
        buf.append(k, k)
        k_codes, _ = buf.codes()
        assert np.all(k_codes == 10)

    def test_outlier_clamping(self):
        buf = self._buffer()
        k = np.full((2, 16), 100.0)  # would be code 2000 -> clamped to 119
        buf.append(k, np.zeros((2, 16)))
        k_codes, _ = buf.codes()
        assert np.all(k_codes == 119)
        assert buf.clamped_total == 2 * 16

    def test_drain_clears(self, rng):
        buf = self._buffer()
        for _ in range(3):
            buf.append(rng.standard_normal((2, 16)), rng.standard_normal((2, 16)))
        k_codes, v_codes, k_scale, v_scale = buf.drain()
        assert k_codes.shape == (2, 3, 16)
        assert len(buf) == 0
        np.testing.assert_allclose(k_scale, 0.05)

    def test_drain_returns_copy(self, rng):
        buf = self._buffer()
        buf.append(np.ones((2, 16)), np.ones((2, 16)))
        k_codes, *_ = buf.drain()
        buf.append(np.full((2, 16), -1.0), np.ones((2, 16)))
        assert np.all(k_codes == 20)  # unchanged by later appends

    def test_extend(self, rng):
        buf = self._buffer()
        buf.extend(rng.standard_normal((2, 4, 16)), rng.standard_normal((2, 4, 16)))
        assert len(buf) == 4

    def test_storage_bits(self, rng):
        buf = self._buffer()
        buf.append(np.ones((2, 16)), np.ones((2, 16)))
        # 2 tensors * 1 token * 2 heads * 16 dims * 8 bits + 2 scales * 2 heads * 16.
        assert buf.storage_bits == 2 * 2 * 16 * 8 + 2 * 2 * 16

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DecodeBuffer(1, 4, capacity=0, k_scale=np.ones((1, 1, 1)), v_scale=np.ones((1, 1, 1)))


class TestSaturationAccounting:
    """Per-head clamp accounting feeding the adaptive-precision escalator."""

    def _buffer(self, h=2, d=16, cap=8):
        return DecodeBuffer(
            h, d, capacity=cap,
            k_scale=np.full((h, 1, 1), 0.05),
            v_scale=np.full((h, 1, 1), 0.05),
        )

    def test_clamped_total_exact_under_known_outliers(self):
        buf = self._buffer()
        k = np.zeros((2, 16))
        k[0, :3] = 100.0  # 3 outliers, head 0, K side only
        buf.append(k, np.zeros((2, 16)))
        assert buf.clamped_total == 3
        v = np.zeros((2, 16))
        v[1, :5] = -100.0  # 5 outliers, head 1, V side
        buf.append(np.zeros((2, 16)), v)
        assert buf.clamped_total == 8

    def test_clamped_total_monotone(self, rng):
        buf = self._buffer(cap=64)
        seen = 0
        for _ in range(20):
            hot = rng.standard_normal((2, 16)) * rng.choice([0.01, 50.0])
            buf.append(hot, hot)
            assert buf.clamped_total >= seen
            seen = buf.clamped_total
        # Drain publishes window stats but never rewinds the lifetime count.
        buf.drain()
        assert buf.clamped_total == seen

    def test_window_clamp_fraction_per_head(self):
        buf = self._buffer()
        k = np.zeros((2, 16))
        k[0, :] = 100.0  # head 0: all 16 K elements clamp (of 32 staged)
        buf.append(k, np.zeros((2, 16)))
        frac = buf.window_clamp_fraction()
        assert frac[0] == pytest.approx(0.5)
        assert frac[1] == 0.0
        assert buf.window_clamp_fraction().shape == (2,)

    def test_drain_publishes_and_resets_window(self):
        buf = self._buffer()
        k = np.full((2, 16), 100.0)
        buf.append(k, np.zeros((2, 16)))
        buf.drain()
        assert buf.last_clamp_fraction[0] == pytest.approx(0.5)
        assert buf.last_k_absmax[0] == pytest.approx(100.0)
        assert buf.window_clamp_fraction().max() == 0.0  # fresh window
        buf.append(np.zeros((2, 16)), np.zeros((2, 16)))
        buf.drain()
        assert buf.last_clamp_fraction.max() == 0.0  # republished, not sticky

    def test_empty_window_fraction_is_zero(self):
        buf = self._buffer()
        assert buf.window_clamp_fraction().max() == 0.0

    def test_grow_scale_stops_clamping(self):
        buf = self._buffer()
        k = np.full((2, 16), 100.0)
        buf.append(k, np.zeros((2, 16)))
        buf.drain()
        grew = buf.grow_scale(np.array([True, True]))
        assert grew == 2
        buf.append(k, np.zeros((2, 16)))
        assert buf.window_clamp_fraction().max() == 0.0  # no longer clamps
        codes, _ = buf.codes()
        assert codes[:, -1, :].max() == buf.clamp_code  # maps to full range

    def test_grow_scale_only_selected_heads(self):
        buf = self._buffer()
        k = np.full((2, 16), 100.0)
        buf.append(k, np.zeros((2, 16)))
        buf.drain()
        assert buf.grow_scale(np.array([True, False])) == 1
        assert buf.k_scale[0, 0, 0] > buf.k_scale[1, 0, 0]

    def test_grow_scale_never_shrinks(self):
        buf = self._buffer()
        buf.append(np.full((2, 16), 0.001), np.zeros((2, 16)))  # tiny absmax
        buf.drain()
        before = buf.k_scale.copy()
        assert buf.grow_scale(np.array([True, True])) == 0
        np.testing.assert_array_equal(buf.k_scale, before)

    def test_grow_scale_requires_empty_buffer(self):
        buf = self._buffer()
        buf.append(np.full((2, 16), 100.0), np.zeros((2, 16)))
        with pytest.raises(RuntimeError, match="empty"):
            buf.grow_scale(np.array([True, True]))


class TestVectorizedExtend:
    """Bulk extend must be element-for-element equivalent to the historical
    per-token append loop (the satellite perf change)."""

    def _pair(self, h=2, d=16, cap=32):
        mk = lambda: DecodeBuffer(
            h, d, capacity=cap,
            k_scale=np.full((h, 1, 1), 0.05),
            v_scale=np.full((h, 1, 1), 0.05),
        )
        return mk(), mk()

    def test_extend_equals_append_loop(self, rng):
        bulk, loop = self._pair()
        k = rng.standard_normal((2, 10, 16)) * 3.0  # some values clamp
        v = rng.standard_normal((2, 10, 16)) * 3.0
        bulk.extend(k, v)
        for t in range(10):
            loop.append(k[:, t, :], v[:, t, :])
        np.testing.assert_array_equal(bulk.codes()[0], loop.codes()[0])
        np.testing.assert_array_equal(bulk.codes()[1], loop.codes()[1])
        assert bulk.clamped_total == loop.clamped_total
        np.testing.assert_allclose(
            bulk.window_clamp_fraction(), loop.window_clamp_fraction()
        )
        np.testing.assert_allclose(bulk.last_k_absmax, loop.last_k_absmax)

    def test_extend_zero_tokens_noop(self):
        buf, _ = self._pair()
        buf.extend(np.zeros((2, 0, 16)), np.zeros((2, 0, 16)))
        assert len(buf) == 0

    def test_extend_overfill_fills_then_raises(self, rng):
        buf, _ = self._pair(cap=4)
        k = rng.standard_normal((2, 6, 16))
        with pytest.raises(RuntimeError, match="full"):
            buf.extend(k, k)
        assert len(buf) == 4  # filled to capacity before raising
        np.testing.assert_array_equal(
            buf.codes()[0],
            np.clip(np.rint(k[:, :4, :] / 0.05), -119, 119).astype(np.int8),
        )

    def test_extend_shape_mismatch(self, rng):
        buf, _ = self._pair()
        with pytest.raises(ValueError):
            buf.extend(rng.standard_normal((2, 3, 16)), rng.standard_normal((2, 4, 16)))

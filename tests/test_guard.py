"""Tests for the numerics guard: policies, counters, recoverable overflow,
adaptive precision escalation, and the guarded prefill/decode kernels."""

import numpy as np
import pytest

from repro.core import TurboAttention, TurboConfig
from repro.guard import (
    EscalationConfig,
    GuardConfig,
    GuardPolicy,
    GuardReport,
    NumericsError,
    PrecisionEscalator,
    check_finite_tile,
    check_scale,
    guarded_int_matmul,
)
from repro.quant.integer_gemm import int32_headroom_ok, int_matmul


class TestGuardConfig:
    def test_policies_coerce_from_strings(self):
        g = GuardConfig(on_nonfinite="raise", on_bad_scale="sanitize",
                        on_overflow="fallback")
        assert g.on_nonfinite is GuardPolicy.RAISE
        assert g.on_bad_scale is GuardPolicy.SANITIZE
        assert g.on_overflow is GuardPolicy.FALLBACK

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(on_nonfinite="explode")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(headroom_fraction=0.0)
        with pytest.raises(ValueError):
            GuardConfig(headroom_fraction=1.5)
        with pytest.raises(ValueError):
            GuardConfig(scale_floor=0.0)


class TestGuardReport:
    def test_clean_and_summary(self):
        r = GuardReport()
        r.checks_run = 7
        assert r.clean
        assert "clean" in r.summary()
        r.bad_scales = 2
        assert not r.clean
        assert "bad_scales=2" in r.summary()

    def test_merge_adds_counters_and_events(self):
        a, b = GuardReport(), GuardReport()
        a.fallback_tiles = 1
        b.fallback_tiles = 2
        b.record("x")
        a.merge(b)
        assert a.fallback_tiles == 3
        assert a.events == ["x"]

    def test_event_cap(self):
        r = GuardReport()
        for i in range(r.max_events + 50):
            r.record(f"e{i}")
        assert len(r.events) == r.max_events


class TestCheckFiniteTile:
    def test_clean_tile_passthrough(self):
        g, r = GuardConfig(), GuardReport()
        x = np.ones((2, 3))
        out, fb = check_finite_tile(x, "t", g, r)
        assert not fb
        np.testing.assert_array_equal(out, x)
        assert r.checks_run == 1 and r.clean

    def test_raise_policy(self):
        g, r = GuardConfig(on_nonfinite="raise"), GuardReport()
        x = np.array([1.0, np.nan])
        with pytest.raises(NumericsError, match="nonfinite"):
            check_finite_tile(x, "t", g, r)

    def test_sanitize_zeroes_and_counts(self):
        g, r = GuardConfig(on_nonfinite="sanitize"), GuardReport()
        x = np.array([1.0, np.nan, np.inf, -np.inf])
        out, fb = check_finite_tile(x, "t", g, r)
        assert not fb  # sanitize repairs without requesting a fallback
        np.testing.assert_array_equal(out, [1.0, 0.0, 0.0, 0.0])
        assert r.nonfinite_tiles == 1
        assert r.sanitized_values == 3

    def test_fallback_requests_reroute(self):
        g, r = GuardConfig(on_nonfinite="fallback"), GuardReport()
        out, fb = check_finite_tile(np.array([np.nan]), "t", g, r)
        assert fb
        assert np.isfinite(out).all()


class TestCheckScale:
    def test_clean_scale_passthrough(self):
        g, r = GuardConfig(), GuardReport()
        s = np.array([0.5, 1.0])
        np.testing.assert_array_equal(check_scale(s, "t", g, r), s)
        assert r.clean

    def test_raise_policy(self):
        g, r = GuardConfig(on_bad_scale="raise"), GuardReport()
        with pytest.raises(NumericsError, match="bad_scale"):
            check_scale(np.array([0.0]), "t", g, r)

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf, 1e-40])
    def test_sanitize_floors_degenerate(self, bad):
        g, r = GuardConfig(on_bad_scale="sanitize"), GuardReport()
        out = check_scale(np.array([bad, 1.0]), "t", g, r)
        assert out[0] == g.scale_floor
        assert out[1] == 1.0
        assert r.bad_scales == 1


class TestRecoverableOverflow:
    def _overflowing(self):
        # 2^20 * 2^20 * 8 = 2^43 >> int32: the legacy path must raise.
        a = np.full((2, 8), 1 << 20, dtype=np.int64)
        b = np.full((8, 3), 1 << 20, dtype=np.int64)
        return a, b

    def test_headroom_check(self):
        a, b = self._overflowing()
        assert not int32_headroom_ok(a, b)
        small = np.full((2, 8), 100, dtype=np.int32)
        assert int32_headroom_ok(small, small.T)
        # A tighter fraction trips earlier.
        assert not int32_headroom_ok(small, small.T, fraction=1e-6)

    def test_raise_default_unchanged(self):
        a, b = self._overflowing()
        with pytest.raises(OverflowError):
            int_matmul(a, b)

    def test_chunked_fallback_is_exact(self):
        a, b = self._overflowing()
        out = int_matmul(a, b, on_overflow="chunk")
        ref = a.astype(np.int64) @ b.astype(np.int64)
        np.testing.assert_array_equal(out, ref)

    def test_chunked_matches_direct_when_safe(self, rng):
        a = rng.integers(-127, 128, size=(3, 4, 16)).astype(np.int8)
        b = rng.integers(-127, 128, size=(3, 16, 5)).astype(np.int8)
        np.testing.assert_array_equal(
            int_matmul(a, b), int_matmul(a, b, on_overflow="chunk")
        )

    def test_unknown_policy_rejected(self):
        a = np.ones((2, 2), dtype=np.int8)
        with pytest.raises(ValueError):
            int_matmul(a, a, on_overflow="pray")

    def test_guarded_matmul_counts_chunking(self):
        a, b = self._overflowing()
        g, r = GuardConfig(on_overflow="fallback"), GuardReport()
        out = guarded_int_matmul(a, b, "t", g, r)
        np.testing.assert_array_equal(out, a.astype(np.int64) @ b.astype(np.int64))
        assert r.overflow_chunked == 1

    def test_guarded_matmul_raise_policy(self):
        a, b = self._overflowing()
        g, r = GuardConfig(on_overflow="raise"), GuardReport()
        with pytest.raises(NumericsError, match="overflow"):
            guarded_int_matmul(a, b, "t", g, r)


class TestPrecisionEscalator:
    def _codes(self, rng, h, t=8, d=4):
        return rng.integers(-100, 101, size=(h, t, d)).astype(np.int32)

    def _cool_flush(self, esc, rng, report=None):
        """A flush that cannot run hot: zero clamping, 8-bit-exact codes."""
        codes = self._codes(rng, esc.head_bits.shape[0])
        scale = np.full(codes.shape[0], 0.01)
        return esc.observe_flush(
            codes, codes, scale, scale, np.zeros(codes.shape[0]), report
        )

    def _hot_flush(self, esc, rng, heads, report=None):
        codes = self._codes(rng, esc.head_bits.shape[0])
        scale = np.full(codes.shape[0], 0.01)
        frac = np.where(np.asarray(heads, bool), 1.0, 0.0)
        return esc.observe_flush(codes, codes, scale, scale, frac, report)

    def test_snaps_assignments_onto_ladder(self):
        cfg = EscalationConfig(ladder=(4, 8))
        esc = PrecisionEscalator(cfg, np.array([2, 4, 8]))
        np.testing.assert_array_equal(esc.head_bits, [4, 4, 8])

    def test_clamp_hot_head_escalates_after_patience(self, rng):
        cfg = EscalationConfig(quality_bits=2, patience=2, clamp_threshold=0.01)
        esc = PrecisionEscalator(cfg, np.array([4, 4]))
        r = GuardReport()
        d1 = self._hot_flush(esc, rng, [True, False], r)
        assert not d1.changed  # streak 1 < patience
        d2 = self._hot_flush(esc, rng, [True, False], r)
        assert d2.changed
        np.testing.assert_array_equal(d2.head_bits, [8, 4])
        assert r.escalations == 1
        assert r.hot_flushes == 2

    def test_bound_violation_escalates_without_clamping(self, rng):
        # quality target = 8-bit bound, but heads store at 2 bits: the
        # measured error alone must trip the escalator.
        cfg = EscalationConfig(quality_bits=8, patience=1)
        esc = PrecisionEscalator(cfg, np.array([2, 2]))
        r = GuardReport()
        d = self._hot_flush(esc, rng, [False, False], r)
        assert d.changed
        np.testing.assert_array_equal(d.head_bits, [4, 4])
        assert r.bound_violations > 0

    def test_top_of_ladder_saturates(self, rng):
        cfg = EscalationConfig(quality_bits=2, patience=1)
        esc = PrecisionEscalator(cfg, np.array([8, 8]))
        d = self._hot_flush(esc, rng, [True, True])
        assert not d.changed
        np.testing.assert_array_equal(d.head_bits, [8, 8])

    def test_deescalates_after_cooldown_never_below_floor(self, rng):
        cfg = EscalationConfig(quality_bits=2, patience=1, cooldown=3,
                               clamp_threshold=0.5)
        esc = PrecisionEscalator(cfg, np.array([4, 4]))
        self._hot_flush(esc, rng, [True, True])  # 4 -> 8
        np.testing.assert_array_equal(esc.head_bits, [8, 8])
        r = GuardReport()
        for _ in range(cfg.cooldown):
            d = self._cool_flush(esc, rng, r)
        np.testing.assert_array_equal(d.head_bits, [4, 4])  # back to floor
        assert r.deescalations == 2
        for _ in range(cfg.cooldown + 1):
            d = self._cool_flush(esc, rng)
        np.testing.assert_array_equal(d.head_bits, [4, 4])  # floor holds

    def test_streaks_reset_on_transition(self, rng):
        cfg = EscalationConfig(quality_bits=2, patience=2, clamp_threshold=0.5)
        esc = PrecisionEscalator(cfg, np.array([2]))
        self._hot_flush(esc, rng, [True])
        d = self._hot_flush(esc, rng, [True])  # 2 -> 4 after 2 hot flushes
        np.testing.assert_array_equal(d.head_bits, [4])
        d = self._hot_flush(esc, rng, [True])  # streak restarted: only 1 hot
        assert not d.changed

    def test_grow_scale_flag(self, rng):
        cfg = EscalationConfig(quality_bits=2, patience=1, grow_scale=False)
        esc = PrecisionEscalator(cfg, np.array([4, 4]))
        d = self._hot_flush(esc, rng, [True, False])
        assert not d.clamp_hot.any()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EscalationConfig(ladder=(4,))
        with pytest.raises(ValueError):
            EscalationConfig(ladder=(8, 4))
        with pytest.raises(ValueError):
            EscalationConfig(ladder=(2, 5))
        with pytest.raises(ValueError):
            EscalationConfig(clamp_threshold=1.5)
        with pytest.raises(ValueError):
            EscalationConfig(patience=0)
        with pytest.raises(ValueError):
            EscalationConfig(error_margin=0.0)


class TestGuardedKernels:
    """The guard threaded through the real prefill/decode paths."""

    def _small(self, rng, h=2, n=48, d=16):
        return (
            rng.standard_normal((h, n, d)),
            rng.standard_normal((h, n, d)),
            rng.standard_normal((h, n, d)),
        )

    def _config(self):
        return TurboConfig(block_q=16, block_k=16, buffer_size=16)

    def test_clean_inputs_identical_with_and_without_guard(self, rng):
        q, k, v = self._small(rng)
        base = TurboAttention(self._config())
        guarded = TurboAttention(self._config(), guard=GuardConfig())
        out_a, st_a = base.prefill(q, k, v)
        out_b, st_b = guarded.prefill(q, k, v)
        np.testing.assert_array_equal(out_a, out_b)
        assert st_b.report is not None and st_b.report.clean
        q1, k1, v1 = (rng.standard_normal((2, 16)) for _ in range(3))
        np.testing.assert_array_equal(
            base.decode_step(q1, k1, v1, st_a),
            guarded.decode_step(q1, k1, v1, st_b),
        )

    def test_prefill_nan_raise_policy(self, rng):
        q, k, v = self._small(rng)
        k[0, 3, 5] = np.nan
        turbo = TurboAttention(self._config(), guard=GuardConfig(on_nonfinite="raise"))
        with pytest.raises(NumericsError):
            turbo.prefill(q, k, v)

    def test_prefill_nan_fallback_produces_finite_output(self, rng):
        q, k, v = self._small(rng)
        k[0, 3, 5] = np.nan
        v[1, 20, 0] = np.inf
        q[0, 40, 2] = -np.inf
        turbo = TurboAttention(self._config(), guard=GuardConfig())
        out, st = turbo.prefill(q, k, v)
        assert np.isfinite(out).all()
        r = st.report
        assert r.nonfinite_tiles >= 3
        assert r.fallback_tiles >= 3
        assert r.sanitized_values == 3
        # The poisoned lanes never reach the quantizer: stored state is clean.
        for block in st.cache.blocks:
            assert np.isfinite(block.k.float_scale).all()
        assert np.isfinite(st.buffer.k_scale).all()

    def test_prefill_fallback_matches_sanitized_reference(self, rng):
        """A guarded run on poisoned inputs equals an unguarded run on the
        pre-sanitized inputs everywhere the integer path still ran."""
        q, k, v = self._small(rng)
        k_bad = k.copy()
        k_bad[0, 3, 5] = np.nan
        k_ref = k.copy()
        k_ref[0, 3, 5] = 0.0
        guarded = TurboAttention(self._config(), guard=GuardConfig())
        base = TurboAttention(self._config())
        out_g, _ = guarded.prefill(q, k_bad, v)
        out_r, _ = base.prefill(q, k_ref, v)
        # Same sanitized floats, but the flagged K-tile runs FP16 in the
        # guarded path — allow the FP16-vs-INT8 tile difference only.
        assert np.abs(out_g - out_r).max() < 0.05

    def test_decode_nan_fallback_step(self, rng):
        q, k, v = self._small(rng)
        turbo = TurboAttention(self._config(), guard=GuardConfig())
        _, st = turbo.prefill(q, k, v)
        q1, k1, v1 = (rng.standard_normal((2, 16)) for _ in range(3))
        q1[0, 3] = np.nan
        out = turbo.decode_step(q1, k1, v1, st)
        assert np.isfinite(out).all()
        assert st.report.fallback_steps == 1
        # The fallback path approximates the exact FP attention closely.
        q_ref = q1.copy()
        q_ref[0, 3] = 0.0
        k_all = np.concatenate([k, k1[:, None, :]], axis=-2)
        v_all = np.concatenate([v, v1[:, None, :]], axis=-2)
        s = np.einsum("hd,hnd->hn", q_ref, k_all) / np.sqrt(16)
        p = np.exp(s - s.max(axis=-1, keepdims=True))
        p /= p.sum(axis=-1, keepdims=True)
        exact = np.einsum("hn,hnd->hd", p, v_all)
        # The fallback dequantizes the *stored* history, so INT4-block
        # reconstruction error is still present — only the integer
        # score/output arithmetic is removed for the poisoned step.
        assert np.abs(out - exact).max() < 0.2

    def test_decode_nan_raise_policy(self, rng):
        q, k, v = self._small(rng)
        turbo = TurboAttention(
            self._config(), guard=GuardConfig(on_nonfinite="raise")
        )
        _, st = turbo.prefill(q, k, v)
        k1 = rng.standard_normal((2, 16))
        k1[1, 0] = np.inf
        with pytest.raises(NumericsError):
            turbo.decode_step(rng.standard_normal((2, 16)), k1,
                              rng.standard_normal((2, 16)), st)

    def test_decode_degenerate_span_scale_sanitized(self, rng):
        q, k, v = self._small(rng)
        turbo = TurboAttention(self._config(), guard=GuardConfig())
        _, st = turbo.prefill(q, k, v)
        # Corrupt a stored block scale in place (what a bad restore or a
        # stealthy corruption would present at decode time).
        st.cache.blocks[0].k.float_scale[0] = 0.0
        out = turbo.decode_step(*(rng.standard_normal((2, 16)) for _ in range(3)),
                                st)
        assert np.isfinite(out).all()
        assert st.report.bad_scales >= 1

    def test_escalation_reported_through_state(self, rng):
        """An outlier-heavy decode stream escalates widths and regrows the
        frozen scale, all visible on the state's report."""
        cfg = TurboConfig(block_q=16, block_k=16, buffer_size=8, kv_bits=4)
        guard = GuardConfig(
            escalation=EscalationConfig(quality_bits=8, patience=1,
                                        clamp_threshold=0.02)
        )
        turbo = TurboAttention(cfg, guard=guard)
        q, k, v = self._small(rng, n=16)
        _, st = turbo.prefill(q, k, v)
        assert st.escalator is not None
        for _ in range(32):
            turbo.decode_step(
                rng.standard_normal((2, 16)),
                rng.standard_normal((2, 16)),
                30.0 + rng.standard_normal((2, 16)),
                st,
            )
        r = st.report
        assert r.escalations > 0
        assert r.scale_regrows > 0
        assert (st.head_bits > 4).any()
        # The cache's policy view and the state's stayed in sync.
        np.testing.assert_array_equal(st.head_bits, st.cache.head_bits)
        # Later blocks carry wider bit arrays than the first ones.
        assert st.cache.blocks[-1].k.bits.max() > st.cache.blocks[0].k.bits.max()

    def test_split_k_decode_unaffected(self, rng):
        """The split-K path takes no guard and must behave as before."""
        from repro.core import turbo_decode_step_split_k

        q, k, v = self._small(rng)
        turbo = TurboAttention(self._config())
        _, st = turbo.prefill(q, k, v)
        out = turbo_decode_step_split_k(
            rng.standard_normal((2, 16)), rng.standard_normal((2, 16)),
            rng.standard_normal((2, 16)), cache=st.cache, buffer=st.buffer,
            config=turbo.config, n_splits=2,
        )
        assert np.isfinite(out).all()

"""Golden regression for SAS: pin the paper's constants and error floor.

The accuracy results downstream (Table 2, Figure 5, every harness using
``sas_softmax``) all rest on three numbers: the degree-3 polynomial of
Eq. 15, the LUT depth implied by the threshold ``n_r = -6``, and the
resulting uniform error of LUT x POLY against ``e^x``.  These tests pin
them to literal golden values so an accidental refit, a changed
threshold, or a silent LUT edit shows up as a loud diff, not as a slow
drift in accuracy tables.
"""

import math

import numpy as np
import pytest

from repro.quant.bounds import sas_bound
from repro.sas.lut import ExpLUT
from repro.sas.poly import PAPER_POLY_COEFFS, poly_eval, poly_max_error
from repro.sas.softmax import SAS, SASConfig

#: Measured max |SAS(x) - e^x| over the active range [-6, 0] for the
#: paper's coefficients; exactly the polynomial fit error (the LUT factor
#: e^{-i} is exact), and well inside the analytic sas_bound.
GOLDEN_MAX_ERROR = 4.0e-4


class TestPaperConstants:
    def test_coefficients_pinned_exactly(self):
        """Eq. 15, highest degree first.  These are published constants:
        any change is a semantic change, not a refactor."""
        assert PAPER_POLY_COEFFS == (-0.1025, 0.4626, -0.9922, 0.9996)

    def test_threshold_default_pinned(self):
        assert SASConfig().threshold == -6
        assert ExpLUT().threshold == -6

    def test_poly_endpoint_values_pinned(self):
        # POLY(0) is the constant term; POLY(1) is the coefficient sum.
        assert poly_eval(np.array([0.0]), PAPER_POLY_COEFFS)[0] == 0.9996
        assert poly_eval(np.array([1.0]), PAPER_POLY_COEFFS)[0] == pytest.approx(
            sum(PAPER_POLY_COEFFS), abs=1e-15
        )

    def test_lut_is_exact_exp_table_with_sentinel(self):
        lut = ExpLUT(threshold=-6)
        assert len(lut) == 8  # e^0 .. e^-6 plus the zero sentinel
        np.testing.assert_array_equal(
            lut.table, np.append(np.exp(-np.arange(7.0)), 0.0)
        )


class TestGoldenError:
    def test_max_error_on_active_range_pinned(self):
        """LUT x POLY vs math.exp on a dense [-6, 0] grid: the measured
        worst case equals the polynomial fit error and must not regress
        past the pinned golden value."""
        sas = SAS()
        xs = np.linspace(-6.0, 0.0, 100_001)
        exact = np.array([math.exp(float(x)) for x in xs[:: 1000]])
        approx = sas(xs[:: 1000])
        assert np.max(np.abs(approx - exact)) <= GOLDEN_MAX_ERROR
        assert sas.max_abs_error() == pytest.approx(GOLDEN_MAX_ERROR, abs=1e-9)
        assert poly_max_error(PAPER_POLY_COEFFS) == pytest.approx(
            GOLDEN_MAX_ERROR, abs=1e-9
        )

    def test_measured_error_inside_analytic_bound(self):
        assert SAS().max_abs_error() < sas_bound(-6)
        # And the bound itself decomposes as fit error + truncated tail.
        assert sas_bound(-6) == pytest.approx(
            poly_max_error(PAPER_POLY_COEFFS) + math.exp(-6), abs=1e-12
        )

    def test_fp16_emulation_error_stays_sub_millinat(self):
        assert SAS(SASConfig(emulate_fp16=True)).max_abs_error() < 1e-3


class TestExactZeroing:
    def test_below_threshold_is_exactly_zero(self):
        sas = SAS()
        xs = np.array([-6.0 - 1e-9, -6.5, -20.0, -1e6, -np.inf])
        np.testing.assert_array_equal(sas(xs), np.zeros_like(xs))

    def test_threshold_itself_is_active(self):
        out = SAS()(np.array([-6.0]))[0]
        assert out > 0.0
        assert out == pytest.approx(math.exp(-6.0), abs=GOLDEN_MAX_ERROR)

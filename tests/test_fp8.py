"""Tests for the FP8 emulation and the FP8 flash backend."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.masks import causal_mask
from repro.attention.reference import reference_attention
from repro.baselines import FP8Attention
from repro.core import TurboAttention, TurboConfig
from repro.fp.fp8 import (
    FP8_E4M3,
    FP8_E5M2,
    fp8_matmul,
    fp8_tile_quantize,
    quantize_fp8,
)


class TestQuantizeFP8:
    def test_exact_values_preserved(self):
        x = np.array([0.0, 1.0, -2.0, 0.5, 448.0, 0.25, 1.125])
        np.testing.assert_array_equal(quantize_fp8(x, FP8_E4M3), x)

    def test_saturation(self):
        np.testing.assert_array_equal(
            quantize_fp8(np.array([1000.0, -1000.0]), FP8_E4M3), [448.0, -448.0]
        )
        assert quantize_fp8(np.array([1e6]), FP8_E5M2)[0] == 57344.0

    def test_idempotent(self, rng):
        x = rng.standard_normal(512) * 10
        once = quantize_fp8(x, FP8_E4M3)
        np.testing.assert_array_equal(quantize_fp8(once, FP8_E4M3), once)

    def test_relative_error_bound_e4m3(self, rng):
        """Normals round with relative error <= 2^-4."""
        x = rng.uniform(0.1, 400, size=4096) * rng.choice([-1, 1], size=4096)
        err = np.abs(quantize_fp8(x, FP8_E4M3) - x) / np.abs(x)
        assert err.max() <= 2.0**-4 + 1e-12

    def test_relative_error_bound_e5m2(self, rng):
        x = rng.uniform(0.1, 400, size=4096)
        err = np.abs(quantize_fp8(x, FP8_E5M2) - x) / np.abs(x)
        assert err.max() <= 2.0**-3 + 1e-12

    def test_e4m3_finer_than_e5m2_in_range(self, rng):
        x = rng.standard_normal(4096)
        e43 = np.abs(quantize_fp8(x, FP8_E4M3) - x).mean()
        e52 = np.abs(quantize_fp8(x, FP8_E5M2) - x).mean()
        assert e43 < e52

    def test_subnormal_flush_region(self):
        # Values far below the smallest subnormal round to zero.
        assert quantize_fp8(np.array([1e-12]), FP8_E4M3)[0] == 0.0

    def test_non_fp8_format_raises(self):
        from repro.fp.formats import FP16

        with pytest.raises(ValueError):
            quantize_fp8(np.zeros(2), FP16)

    @given(st.floats(min_value=-448, max_value=448, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_rounding_never_increases_magnitude_past_next_grid(self, v):
        q = quantize_fp8(np.array([v]), FP8_E4M3)[0]
        # Error bounded by half the local quantum (<= max(|v|,2^-6)*2^-3).
        quantum = max(abs(v), 2.0**-6) * 2.0**-3
        assert abs(q - v) <= quantum / 2 + 1e-12


class TestFP8Matmul:
    def test_close_to_exact(self, rng):
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 8))
        rel = np.linalg.norm(fp8_matmul(a, b) - a @ b) / np.linalg.norm(a @ b)
        assert rel < 0.1

    def test_tile_quantize_scale_recovery(self, rng):
        x = rng.standard_normal((2, 16, 8)) * 100
        vals, scale = fp8_tile_quantize(x)
        rel = np.linalg.norm(vals * scale - x) / np.linalg.norm(x)
        assert rel < 0.05


class TestFP8Attention:
    @pytest.fixture
    def qkv_small(self, rng):
        return tuple(rng.standard_normal((4, 150, 32)) for _ in range(3))

    def test_prefill_accuracy(self, qkv_small):
        q, k, v = qkv_small
        n = q.shape[1]
        out, _ = FP8Attention().prefill(q, k, v, causal=True)
        ref = reference_attention(q, k, v, mask=causal_mask(n, n))
        assert np.linalg.norm(out - ref) / np.linalg.norm(ref) < 0.08

    def test_decode_and_storage(self, qkv_small, rng):
        q, k, v = qkv_small
        backend = FP8Attention()
        _, state = backend.prefill(q, k, v)
        out = backend.decode_step(
            rng.standard_normal((4, 32)), rng.standard_normal((4, 32)),
            rng.standard_normal((4, 32)), state,
        )
        assert out.shape == (4, 32)
        assert state.seq_len == 151
        # ~8 bits + per-tile scale + FP16 pending tail.
        assert 8.0 < state.effective_bits_per_value() < 10.0

    def test_int8_turbo_more_accurate_than_fp8(self, qkv_small):
        """The INT8 stage's 119 uniform levels beat E4M3's 3-bit mantissa
        at equal per-tile scaling — FlashQ's compute stage is not merely
        'FP8 in disguise'."""
        q, k, v = qkv_small
        n = q.shape[1]
        ref = reference_attention(q, k, v, mask=causal_mask(n, n))
        fp8_out, _ = FP8Attention().prefill(q, k, v, causal=True)
        turbo_out, _ = TurboAttention(TurboConfig()).prefill(q, k, v, causal=True)
        fp8_err = np.linalg.norm(fp8_out - ref)
        turbo_err = np.linalg.norm(turbo_out - ref)
        assert turbo_err < fp8_err

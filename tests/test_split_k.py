"""Tests for split-K decode and the exact partial merge."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.reference import reference_attention
from repro.attention.split_k import merge_partials, split_k_decode
from repro.core import TurboAttention, TurboConfig
from repro.core.decode import turbo_decode_step_split_k


class TestMergePartials:
    def test_two_way_merge_exact(self, rng):
        q = rng.standard_normal((2, 1, 16))
        k = rng.standard_normal((2, 64, 16))
        v = rng.standard_normal((2, 64, 16))
        o1, l1 = reference_attention(q, k[:, :40], v[:, :40], return_lse=True)
        o2, l2 = reference_attention(q, k[:, 40:], v[:, 40:], return_lse=True)
        merged, lse = merge_partials([o1, o2], [l1, l2])
        full, full_lse = reference_attention(q, k, v, return_lse=True)
        np.testing.assert_allclose(merged, full, atol=1e-12)
        np.testing.assert_allclose(lse, full_lse, atol=1e-12)

    def test_empty_partial_ignored(self, rng):
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 16, 8))
        v = rng.standard_normal((1, 16, 8))
        out, lse = reference_attention(q, k, v, return_lse=True)
        # A fully-masked partial (lse = -inf, zero output) contributes 0.
        dead = np.zeros_like(out)
        dead_lse = np.full_like(lse, -np.inf)
        merged, _ = merge_partials([out, dead], [lse, dead_lse])
        np.testing.assert_allclose(merged, out, atol=1e-12)

    def test_single_partial_identity(self, rng):
        out = rng.standard_normal((2, 1, 8))
        lse = rng.standard_normal((2, 1))
        merged, merged_lse = merge_partials([out], [lse])
        np.testing.assert_allclose(merged, out)
        np.testing.assert_allclose(merged_lse, lse)

    def test_mismatched_inputs_raise(self):
        with pytest.raises(ValueError):
            merge_partials([np.zeros((1, 4))], [])

    def test_merge_is_permutation_invariant(self, rng):
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 30, 8))
        v = rng.standard_normal((1, 30, 8))
        parts = [
            reference_attention(q, k[:, lo:hi], v[:, lo:hi], return_lse=True)
            for lo, hi in ((0, 10), (10, 20), (20, 30))
        ]
        a, _ = merge_partials([p[0] for p in parts], [p[1] for p in parts])
        rev = parts[::-1]
        b, _ = merge_partials([p[0] for p in rev], [p[1] for p in rev])
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestSplitKDecode:
    @given(st.integers(1, 9), st.integers(2, 120))
    @settings(max_examples=30, deadline=None)
    def test_any_split_exact(self, n_splits, n):
        rng = np.random.default_rng(n_splits * 1000 + n)
        q = rng.standard_normal((2, 1, 8))
        k = rng.standard_normal((2, n, 8))
        v = rng.standard_normal((2, n, 8))
        out = split_k_decode(q, k, v, n_splits=n_splits)
        np.testing.assert_allclose(out, reference_attention(q, k, v), atol=1e-12)

    def test_invalid_splits(self, rng):
        q = rng.standard_normal((1, 1, 8))
        k = rng.standard_normal((1, 8, 8))
        with pytest.raises(ValueError):
            split_k_decode(q, k, k, n_splits=0)


class TestTurboSplitK:
    @pytest.fixture
    def prefilled(self, rng):
        h, n, d = 4, 200, 32
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
        _, state = turbo.prefill(q, k, v)
        return turbo, state

    def test_matches_unsplit_without_sas(self, rng):
        h, n, d = 2, 128, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        cfg = TurboConfig(block_k=32, buffer_size=32, use_sas=False)
        turbo = TurboAttention(cfg)
        _, s1 = turbo.prefill(q, k, v)
        _, s2 = turbo.prefill(q, k, v)
        q1, k1, v1 = (rng.standard_normal((h, d)) for _ in range(3))
        a = turbo.decode_step(q1, k1, v1, s1)
        b = turbo_decode_step_split_k(q1, k1, v1, s2.cache, s2.buffer, cfg, n_splits=3)
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_close_to_unsplit_with_sas(self, prefilled, rng):
        """SAS's per-span rescale decay differs between schedules; the
        results agree to within the SAS approximation error."""
        turbo, state = prefilled
        state2 = copy.deepcopy(state)
        q1, k1, v1 = (rng.standard_normal((4, 32)) for _ in range(3))
        a = turbo.decode_step(q1, k1, v1, state)
        b = turbo_decode_step_split_k(
            q1, k1, v1, state2.cache, state2.buffer, turbo.config, n_splits=4
        )
        assert np.linalg.norm(a - b) / np.linalg.norm(a) < 5e-3

    def test_splits_exceeding_spans_ok(self, prefilled, rng):
        turbo, state = prefilled
        q1, k1, v1 = (rng.standard_normal((4, 32)) for _ in range(3))
        out = turbo_decode_step_split_k(
            q1, k1, v1, state.cache, state.buffer, turbo.config, n_splits=100
        )
        assert out.shape == (4, 32)

    def test_invalid_splits(self, prefilled, rng):
        turbo, state = prefilled
        q1 = rng.standard_normal((4, 32))
        with pytest.raises(ValueError):
            turbo_decode_step_split_k(
                q1, q1, q1, state.cache, state.buffer, turbo.config, n_splits=0
            )

    def test_state_advances_identically(self, prefilled, rng):
        turbo, state = prefilled
        state2 = copy.deepcopy(state)
        q1, k1, v1 = (rng.standard_normal((4, 32)) for _ in range(3))
        turbo.decode_step(q1, k1, v1, state)
        turbo_decode_step_split_k(
            q1, k1, v1, state2.cache, state2.buffer, turbo.config, n_splits=2
        )
        assert state.seq_len == state2.seq_len
        assert len(state.buffer) == len(state2.buffer)

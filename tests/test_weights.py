"""Tests for the weight-quantized linear layers (Table 5 machinery)."""

import numpy as np
import pytest

from repro.quant.weights import DenseLinear, LLMInt8Linear, QServeW4A8Linear, make_linear


@pytest.fixture
def weight(rng):
    return rng.standard_normal((64, 32)) / 8.0


@pytest.fixture
def x(rng):
    return rng.standard_normal((10, 64))


class TestDenseLinear:
    def test_matches_fp16_matmul(self, weight, x):
        lin = DenseLinear(weight)
        out = lin(x)
        rel = np.linalg.norm(out - x @ weight) / np.linalg.norm(x @ weight)
        assert rel < 5e-3

    def test_storage(self, weight):
        assert DenseLinear(weight).storage_bits == 64 * 32 * 16


class TestLLMInt8Linear:
    def test_close_to_dense(self, weight, x):
        dense = DenseLinear(weight)(x)
        out = LLMInt8Linear(weight)(x)
        rel = np.linalg.norm(out - dense) / np.linalg.norm(dense)
        assert rel < 0.02

    def test_outlier_path_exact(self, weight, rng):
        # A column far past the threshold routes through FP16 exactly.
        x = rng.standard_normal((4, 64))
        x[:, 3] = 100.0
        out = LLMInt8Linear(weight, outlier_threshold=6.0)(x)
        dense = DenseLinear(weight)(x)
        rel = np.linalg.norm(out - dense) / np.linalg.norm(dense)
        assert rel < 0.02

    def test_all_outliers_degenerates_to_fp16(self, weight, rng):
        x = rng.standard_normal((4, 64)) * 100
        out = LLMInt8Linear(weight, outlier_threshold=6.0)(x)
        dense = DenseLinear(weight)(x)
        np.testing.assert_allclose(out, dense, rtol=1e-9)

    def test_storage_smaller_than_dense(self, weight):
        assert LLMInt8Linear(weight).storage_bits < DenseLinear(weight).storage_bits

    def test_batched_input(self, weight, rng):
        x = rng.standard_normal((3, 5, 64))
        out = LLMInt8Linear(weight)(x)
        assert out.shape == (3, 5, 32)


class TestQServeW4A8Linear:
    def test_close_to_dense(self, weight, x):
        dense = DenseLinear(weight)(x)
        out = QServeW4A8Linear(weight)(x)
        rel = np.linalg.norm(out - dense) / np.linalg.norm(dense)
        assert rel < 0.12  # 4-bit weights + 8-bit activations

    def test_storage_near_4bit(self, weight):
        lin = QServeW4A8Linear(weight)
        bits_per_weight = lin.storage_bits / (64 * 32)
        assert 4.0 < bits_per_weight < 6.5

    def test_group_padding(self, rng):
        # in_features not divisible by group_size exercises the pad path.
        w = rng.standard_normal((70, 16)) / 8.0
        lin = QServeW4A8Linear(w, group_size=32)
        out = lin(rng.standard_normal((3, 70)))
        assert out.shape == (3, 16)


class TestMakeLinear:
    def test_dispatch(self, weight):
        assert isinstance(make_linear(weight, "fp16"), DenseLinear)
        assert isinstance(make_linear(weight, "llm_int8"), LLMInt8Linear)
        assert isinstance(make_linear(weight, "qserve_w4a8"), QServeW4A8Linear)

    def test_unknown_raises(self, weight):
        with pytest.raises(ValueError):
            make_linear(weight, "awq")

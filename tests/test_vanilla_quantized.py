"""Tests for vanilla (materializing) quantized attention — the §2.2
granularity-vs-memory trade-off."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention
from repro.attention.vanilla_quantized import (
    intermediate_bytes,
    vanilla_quantized_attention,
)
from repro.models.config import MODEL_PRESETS
from repro.models.synthetic_stats import synthetic_qkv


@pytest.fixture
def shaped_qkv():
    cfg = MODEL_PRESETS["phi3ish"]
    rng = np.random.default_rng(3)
    s = synthetic_qkv(cfg, 96, rng)
    return s.q[:4], s.k[:4], s.v[:4]


class TestAccuracy:
    def test_close_to_reference(self, shaped_qkv):
        q, k, v = shaped_qkv
        ref = reference_attention(q, k, v)
        res = vanilla_quantized_attention(q, k, v, per_token=True)
        rel = np.linalg.norm(res.output - ref) / np.linalg.norm(ref)
        assert rel < 0.06

    def test_per_token_tighter_than_per_head(self, shaped_qkv):
        """On channel-outlier data, finer scales reduce error — the upside
        the paper concedes before rejecting the layout for tiling reasons."""
        q, k, v = shaped_qkv
        ref = reference_attention(q, k, v)
        fine = vanilla_quantized_attention(q, k, v, per_token=True)
        coarse = vanilla_quantized_attention(q, k, v, per_token=False)
        err = lambda r: np.linalg.norm(r.output - ref)
        assert err(fine) < err(coarse)

    def test_bits_monotone(self, shaped_qkv):
        q, k, v = shaped_qkv
        ref = reference_attention(q, k, v)
        errs = {
            b: np.linalg.norm(
                vanilla_quantized_attention(q, k, v, bits=b).output - ref
            )
            for b in (4, 8)
        }
        assert errs[8] < errs[4]


class TestMemory:
    def test_quadratic_intermediates(self):
        assert intermediate_bytes(2048, 2048, 8) == 4 * intermediate_bytes(1024, 1024, 8)

    def test_result_reports_footprint(self, shaped_qkv):
        q, k, v = shaped_qkv
        res = vanilla_quantized_attention(q, k, v)
        assert res.intermediate_bytes == intermediate_bytes(96, 96, 4)

    def test_exceeds_hbm_at_paper_scale(self):
        """At Figure 6's 32k/batch-4 point the materialized intermediates
        alone exceed the A100's 80 GB — why the paper requires a
        FlashAttention-compatible (per-tile) quantization design."""
        assert intermediate_bytes(32768, 32768, 40, batch=4) > 80e9

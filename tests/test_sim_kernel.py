"""Property tests for the event-scheduler kernel itself.

Both simulation loops (engine, cluster) drive :class:`repro.sim.EventScheduler`,
so these properties — total seed-stable same-instant ordering, cancellation
never firing, monotonic time, time_scale commuting with digests, and the
closed kind registry — are proven once here and inherited everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import (
    EventScheduler,
    ListTraceSink,
    MonotonicTimeError,
    UnknownEventKind,
    trace_digest,
)

ORDER = {"alpha": 0, "beta": 1, "gamma": 2, "note": 10}


def drain(sched):
    fired = []
    while (ev := sched.pop()) is not None:
        fired.append(ev)
    return fired


class TestClosedKindRegistry:
    """Satellite: adding a new event kind without an order class raises
    instead of silently sorting by name."""

    def test_unknown_kind_raises_at_schedule_time(self):
        sched = EventScheduler(ORDER)
        with pytest.raises(UnknownEventKind, match="no order class"):
            sched.schedule(1.0, "delta")
        # Nothing half-enqueued: the scheduler stays empty.
        assert sched.empty

    def test_unknown_kind_raises_for_marks_too(self):
        sched = EventScheduler(ORDER, trace=ListTraceSink())
        with pytest.raises(UnknownEventKind):
            sched.mark("delta", "oops")

    def test_error_names_the_known_taxonomy(self):
        sched = EventScheduler(ORDER, clock="test")
        with pytest.raises(UnknownEventKind, match="alpha"):
            sched.schedule(0.0, "delta")


class TestSameInstantOrdering:
    def test_order_class_then_schedule_order(self):
        """At one instant, order class ranks first; seq breaks ties —
        never the kind name or payload."""
        sched = EventScheduler(ORDER)
        # Scheduled deliberately out of order-class order ("gamma" first).
        sched.schedule(1.0, "gamma", label="g1")
        sched.schedule(1.0, "alpha", label="a1")
        sched.schedule(1.0, "beta", label="b1")
        sched.schedule(1.0, "alpha", label="a2")
        fired = [(e.kind, e.label) for e in drain(sched)]
        assert fired == [
            ("alpha", "a1"), ("alpha", "a2"), ("beta", "b1"), ("gamma", "g1")
        ]

    def test_ordering_is_total_and_seed_stable(self):
        """A random same-instant schedule pops in exactly one order, and
        identical runs produce byte-identical trace digests."""
        def once():
            rng = np.random.default_rng(7)
            sink = ListTraceSink()
            sched = EventScheduler(ORDER, trace=sink)
            kinds = ["alpha", "beta", "gamma"]
            for i in range(200):
                t = float(rng.integers(0, 5))  # heavy same-instant collisions
                sched.schedule(t, kinds[int(rng.integers(3))], label=f"e{i}")
            fired = [(e.time, e.order, e.seq) for e in drain(sched)]
            return fired, sink.digest()

        (fired_a, digest_a), (fired_b, digest_b) = once(), once()
        assert fired_a == fired_b
        assert digest_a == digest_b
        # Totality: the fired key sequence is strictly increasing — no two
        # events compare equal, so the order never depends on tie-breaking
        # outside the kernel's key.
        assert all(a < b for a, b in zip(fired_a, fired_a[1:]))


class TestCancellation:
    def test_cancelled_events_never_fire(self):
        rng = np.random.default_rng(3)
        sched = EventScheduler(ORDER)
        events = [
            sched.schedule(float(rng.uniform(0, 10)), "alpha", label=f"e{i}")
            for i in range(100)
        ]
        cancelled = [e for i, e in enumerate(events) if i % 3 == 0]
        for e in cancelled:
            assert sched.cancel(e)
        fired = drain(sched)
        assert len(fired) == len(events) - len(cancelled)
        assert not (set(id(e) for e in fired) & set(id(e) for e in cancelled))

    def test_cancel_is_idempotent_and_refuses_fired(self):
        sched = EventScheduler(ORDER)
        ev = sched.schedule(1.0, "alpha")
        assert sched.cancel(ev)
        assert not sched.cancel(ev)  # second cancel: no-op
        ev2 = sched.schedule(2.0, "alpha")
        assert sched.pop() is ev2
        assert not sched.cancel(ev2)  # already fired: no-op
        assert sched.empty

    def test_cancelled_head_is_skipped_by_next_time(self):
        sched = EventScheduler(ORDER)
        head = sched.schedule(1.0, "alpha")
        sched.schedule(2.0, "beta")
        sched.cancel(head)
        assert sched.next_time == 2.0
        assert len(sched) == 1

    def test_cancellation_is_traced(self):
        sink = ListTraceSink()
        sched = EventScheduler(ORDER, trace=sink)
        sched.cancel(sched.schedule(1.0, "alpha", label="x"))
        actions = [(r["action"], r["ev"]) for r in sink.records]
        assert actions == [("schedule", "alpha"), ("cancel", "alpha")]


class TestMonotonicTime:
    def test_fired_times_never_decrease(self):
        rng = np.random.default_rng(11)
        sched = EventScheduler(ORDER)
        for i in range(300):
            sched.schedule(float(rng.uniform(0, 50)), "beta", label=f"e{i}")
        times = [e.time for e in drain(sched)]
        assert times == sorted(times)
        assert sched.now == times[-1]

    def test_scheduling_into_the_past_raises(self):
        sched = EventScheduler(ORDER)
        sched.schedule(5.0, "alpha")
        assert sched.pop().time == 5.0
        with pytest.raises(MonotonicTimeError):
            sched.schedule(4.0, "alpha")
        # At exactly now is allowed (same-instant follow-up events).
        sched.schedule(5.0, "beta")

    def test_negative_delay_raises(self):
        sched = EventScheduler(ORDER)
        with pytest.raises(MonotonicTimeError):
            sched.schedule_in(-0.1, "alpha")

    def test_pop_due_respects_the_consumer_clock(self):
        sched = EventScheduler(ORDER)
        sched.schedule(1.0, "alpha")
        sched.schedule(2.0, "alpha")
        assert sched.pop_due(0.5) is None
        assert sched.pop_due(1.0).time == 1.0
        assert sched.pop_due(1.5) is None  # 2.0 is not yet due
        assert sched.pop_due(10.0).time == 2.0
        assert sched.pop_due(10.0) is None


class TestTimeScale:
    def test_time_scale_commutes_with_digests(self):
        """Scheduling delays under ``time_scale=s`` produces the same
        trace (hence digest) as pre-scaled delays under scale 1 — the
        straggler model is pure time dilation, not a behaviour change."""
        delays = [0.5, 1.25, 2.0, 0.75]

        def run(scale, raw):
            sink = ListTraceSink()
            sched = EventScheduler(ORDER, trace=sink)
            sched.time_scale = scale
            for i, d in enumerate(raw):
                sched.schedule_in(d, "alpha", label=f"e{i}")
            while sched.pop() is not None:
                pass
            return sink.digest()

        assert run(4.0, delays) == run(1.0, [d * 4.0 for d in delays])
        assert run(4.0, delays) != run(1.0, delays)

    def test_schedule_in_stretches_by_scale(self):
        sched = EventScheduler(ORDER)
        sched.time_scale = 3.0
        ev = sched.schedule_in(2.0, "alpha")
        assert ev.time == 6.0


class TestBatchDrains:
    def test_pop_batch_fires_exactly_the_head_instant(self):
        sched = EventScheduler(ORDER)
        sched.schedule(1.0, "beta", label="b")
        sched.schedule(1.0, "alpha", label="a")
        sched.schedule(2.0, "alpha", label="later")
        fired = [e.label for e in sched.pop_batch()]
        assert fired == ["a", "b"]  # order class, not schedule order
        assert sched.now == 1.0 and len(sched) == 1

    def test_pop_batch_on_empty_scheduler_yields_nothing(self):
        sched = EventScheduler(ORDER)
        assert list(sched.pop_batch()) == []

    def test_pop_batch_includes_same_instant_events_scheduled_mid_drain(self):
        # A handler scheduling at the instant being drained sees its
        # event fire in this same sweep, in its order-class slot —
        # exactly what a pop()-in-a-loop caller observes.
        sched = EventScheduler(ORDER)
        sched.schedule(1.0, "alpha", label="first")
        sched.schedule(1.0, "gamma", label="last")
        fired = []
        for ev in sched.pop_batch():
            fired.append(ev.label)
            if ev.label == "first":
                sched.schedule(1.0, "beta", label="injected")
        assert fired == ["first", "injected", "last"]

    def test_pop_due_batch_drains_everything_due(self):
        sched = EventScheduler(ORDER)
        sched.schedule(1.0, "alpha", label="a")
        sched.schedule(2.0, "alpha", label="b")
        sched.schedule(3.0, "alpha", label="late")
        assert [e.label for e in sched.pop_due_batch(2.5)] == ["a", "b"]
        assert sched.now == 2.0
        assert [e.label for e in sched.pop_due_batch(1.0)] == []
        assert [e.label for e in sched.pop_due_batch(3.0)] == ["late"]

    def test_batch_drains_match_scalar_pops_in_trace(self):
        def run(drain):
            sink = ListTraceSink()
            sched = EventScheduler(ORDER, trace=sink)
            for i, (t, kind) in enumerate(
                [(1.0, "beta"), (1.0, "alpha"), (1.0, "gamma"), (2.0, "alpha")]
            ):
                sched.schedule(t, kind, label=f"e{i}")
            drain(sched)
            return sink.digest()

        def scalar(sched):
            while sched.pop() is not None:
                pass

        def batched(sched):
            while sched.next_time is not None:
                for _ in sched.pop_batch():
                    pass

        assert run(scalar) == run(batched)

"""Tests for the synthetic recall tasks and the evaluation harness."""

import numpy as np
import pytest
from dataclasses import replace

from repro.baselines import FP16Attention, KIVIAttention, KIVIConfig
from repro.core import TurboAttention, TurboConfig
from repro.models.config import MODEL_PRESETS
from repro.tasks import TASK_PRESETS, task_for_model
from repro.tasks.recall import RecallTask, build_streams, evaluate_backend

QUICK = RecallTask(
    name="quick", prefill_len=256, n_pairs=48, n_hops=32,
    beta=5.0, gamma=4.0, value_coherence=0.9, seed=11,
)


class TestTaskConfig:
    def test_presets_match_paper_prompt_lengths(self):
        assert TASK_PRESETS["gsm8k_like"].prefill_len == 900
        assert TASK_PRESETS["aqua_like"].prefill_len == 1304
        assert TASK_PRESETS["bbh_like"].prefill_len == 1021
        for t in TASK_PRESETS.values():
            assert t.n_hops == 256  # paper generates 256 tokens

    def test_validation(self):
        with pytest.raises(ValueError):
            RecallTask(name="x", prefill_len=8, n_pairs=9)
        with pytest.raises(ValueError):
            RecallTask(name="x", beta=-1.0)
        with pytest.raises(ValueError):
            RecallTask(name="x", value_coherence=1.0)

    def test_task_for_model(self):
        task, model = task_for_model("gsm8k_like", "phi3ish")
        assert task.name == "gsm8k_like" and model.name == "phi3ish"
        with pytest.raises(KeyError):
            task_for_model("nope", "phi3ish")
        with pytest.raises(KeyError):
            task_for_model("gsm8k_like", "nope")


class TestBuildStreams:
    def test_shapes(self):
        model = MODEL_PRESETS["llama3ish"]
        rng = np.random.default_rng(0)
        k, v, queries, values, gains_v = build_streams(QUICK, model, rng)
        assert k.shape == (model.n_kv_heads, 256, model.head_dim)
        assert queries.shape == (model.n_kv_heads, 48, model.head_dim)
        assert values.shape == (48, model.head_dim)
        assert gains_v.shape == (model.n_kv_heads, model.head_dim)

    def test_score_geometry(self):
        """Gain-decoupling: a query's score against its own stored key is
        beta^2 + gamma^2, independent of the head's channel gains."""
        model = MODEL_PRESETS["phi3ish"]
        rng = np.random.default_rng(0)
        k, _v, queries, _vals, _gv = build_streams(QUICK, model, rng)
        # Locate stored pair keys by matching against queries.
        for h in range(model.n_kv_heads):
            scores = queries[h] @ k[h].T  # (m, n)
            best = scores.max(axis=1)
            np.testing.assert_allclose(
                best, QUICK.beta**2 + QUICK.gamma**2, rtol=1e-6
            )

    def test_distractors_suppressed(self):
        model = MODEL_PRESETS["llama3ish"]
        rng = np.random.default_rng(0)
        k, _v, queries, _vals, _gv = build_streams(QUICK, model, rng)
        scores = queries[0] @ k[0].T
        # Median score (distractor-dominated) is far below the match.
        assert np.median(scores) < -QUICK.gamma**2 / 2

    def test_value_coherence_controls_similarity(self):
        model = MODEL_PRESETS["llama3ish"]
        low = replace(QUICK, value_coherence=0.0)
        high = replace(QUICK, value_coherence=0.9)
        _, _, _, v_low, _ = build_streams(low, model, np.random.default_rng(1))
        _, _, _, v_high, _ = build_streams(high, model, np.random.default_rng(1))
        mean_cos = lambda v: np.mean((v @ v.T)[np.triu_indices(len(v), 1)])
        assert mean_cos(v_high) > mean_cos(v_low) + 0.5


class TestEvaluateBackend:
    def test_fp16_solves_task(self):
        res = evaluate_backend(FP16Attention, QUICK, MODEL_PRESETS["llama3ish"])
        assert res.accuracy == 1.0
        assert res.effective_bits == 16.0

    def test_turbo4_near_lossless(self):
        res = evaluate_backend(
            lambda: TurboAttention(TurboConfig()), QUICK, MODEL_PRESETS["phi3ish"]
        )
        assert res.accuracy >= 0.97
        assert res.effective_bits < 6.0

    def test_turbo_mixed_beats_kivi2_on_phi3(self):
        """The Table 2 headline at matched-or-better compression."""
        model = MODEL_PRESETS["phi3ish"]
        hard = replace(QUICK, value_coherence=0.92)
        turbo = evaluate_backend(
            lambda: TurboAttention(TurboConfig(mixed_precision=True)), hard, model
        )
        kivi = evaluate_backend(
            lambda: KIVIAttention(KIVIConfig(bits=2)), hard, model
        )
        assert turbo.accuracy > kivi.accuracy

    def test_deterministic(self):
        model = MODEL_PRESETS["llama3ish"]
        a = evaluate_backend(FP16Attention, QUICK, model)
        b = evaluate_backend(FP16Attention, QUICK, model)
        assert a.accuracy == b.accuracy

    def test_accuracy_in_unit_interval(self):
        res = evaluate_backend(
            lambda: TurboAttention(TurboConfig(kv_bits=2)), QUICK, MODEL_PRESETS["qwen2ish"]
        )
        assert 0.0 <= res.accuracy <= 1.0

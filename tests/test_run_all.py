"""Tests for the run_all harness driver and registry completeness."""

import pytest

from repro.harness.run_all import RUNNERS, main


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "fig1", "table1", "table2", "fig4", "fig5", "fig6",
            "fig7a", "fig7b", "table3", "table4", "table5", "fig10",
        }
        assert expected <= set(RUNNERS)

    def test_extensions_registered(self):
        assert {
            "ablations", "serving", "cluster", "faults", "overload",
            "prefix", "guard", "needle",
        } <= set(RUNNERS)

    def test_runners_expose_interface(self):
        for mod in RUNNERS.values():
            assert callable(mod.run)
            assert callable(mod.main)


class TestDriver:
    def test_subset_quick(self, capsys):
        assert main(["--quick", "--only", "fig5", "table1"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out and "POLY" in out

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

"""Prefix KV cache: content addressing, refcounts, COW, tenancy.

Block conservation is the load-bearing property: every allocator block
the pool takes is returned exactly once (release, cancel, or eviction),
refcounts are never negative, and a copy-on-write divergence never
mutates bytes other sharers read.  The tests drive the pool directly,
then through the engine, then through the full cluster stack with
admission, brownout, and fault injection layered on.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterSimulator, FaultConfig
from repro.overload import AdmissionConfig, BrownoutConfig
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.prefix import (
    PrefixCacheConfig,
    PrefixPool,
    TenantConfig,
    TenantLedger,
    prefix_block_keys,
)
from repro.quant.schemes import dequantize_symmetric, quantize_symmetric
from repro.serving import (
    PagedKVAllocator,
    Request,
    RequestRecord,
    ServingEngine,
    zipf_shared_workload,
)
from repro.serving.engine import EngineConfig
from repro.serving.metrics import SLO


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


METHOD = METHODS["turbo4"]
BT = 64  # block_tokens everywhere in this file


def make_allocator(model, total_blocks=64, block_tokens=BT):
    probe = PagedKVAllocator(model, METHOD, budget_bytes=2**40,
                             block_tokens=block_tokens)
    budget = probe.bytes_per_token * block_tokens * total_blocks * (1 + 1e-9)
    alloc = PagedKVAllocator(model, METHOD, budget_bytes=budget,
                             block_tokens=block_tokens)
    assert alloc.total_blocks == total_blocks
    return alloc


def record(rid, prompt_len, shared_len, prefix_id=1, kv_bits=None,
           priority=0, tenant=0):
    rec = RequestRecord(
        request=Request(
            request_id=rid, arrival_time=0.0, prompt_len=prompt_len,
            gen_len=16, prefix_id=prefix_id, shared_prefix_len=shared_len,
            priority=priority, tenant_id=tenant,
        )
    )
    rec.kv_bits = kv_bits if kv_bits is not None else METHOD.kv_bits
    return rec


class TestBlockKeys:
    def test_deterministic_and_chained(self):
        a = prefix_block_keys(7, 4, BT)
        assert a == prefix_block_keys(7, 4, BT)
        # A longer chain extends the shorter one (hash-chain property).
        assert prefix_block_keys(7, 6, BT)[:4] == a
        # Another stream shares no keys anywhere in the chain.
        assert not set(prefix_block_keys(8, 4, BT)) & set(a)

    def test_tail_key_commits_to_length(self):
        full = prefix_block_keys(3, 2, BT)
        with_tail = prefix_block_keys(3, 2, BT, tail_tokens=10)
        assert with_tail[:2] == full
        assert with_tail[2] != full[1]
        assert with_tail[2] != prefix_block_keys(3, 2, BT, tail_tokens=11)[2]

    def test_block_tokens_changes_every_key(self):
        assert not set(prefix_block_keys(3, 3, 64)) & set(prefix_block_keys(3, 3, 32))

    def test_validation(self):
        with pytest.raises(ValueError):
            prefix_block_keys(1, -1, BT)
        with pytest.raises(ValueError):
            prefix_block_keys(1, 1, BT, tail_tokens=BT)


class TestPoolSharing:
    def test_insert_then_hit(self, model):
        pool = PrefixPool(make_allocator(model))
        a = pool.acquire(record(1, 300, 256), now=0.0)
        assert a.shared_tokens == 256 and a.hit_tokens == 0
        assert a.inserted_blocks == 4 and pool.resident_blocks == 4
        b = pool.acquire(record(2, 400, 256), now=1.0)
        assert b.hit_tokens == 256 and b.inserted_blocks == 0
        assert pool.resident_blocks == 4  # shared, not duplicated
        assert pool.allocator.shared_blocks == 4
        assert pool.check_invariants() == []

    def test_probe_is_readonly(self, model):
        pool = PrefixPool(make_allocator(model))
        assert pool.probe(record(1, 300, 256)) == 0
        pool.acquire(record(1, 300, 256), now=0.0)
        before = {k: b.last_used for k, b in pool._blocks.items()}
        assert pool.probe(record(2, 300, 256)) == 256
        assert {k: b.last_used for k, b in pool._blocks.items()} == before
        assert 2 not in pool._held

    def test_double_acquire_raises(self, model):
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 300, 256), now=0.0)
        with pytest.raises(ValueError):
            pool.acquire(record(1, 300, 256), now=1.0)

    def test_no_prefix_is_a_noop(self, model):
        pool = PrefixPool(make_allocator(model))
        rec = RequestRecord(
            request=Request(request_id=1, arrival_time=0.0, prompt_len=100,
                            gen_len=8)
        )
        assert pool.acquire(rec, now=0.0).shared_tokens == 0
        assert pool.resident_blocks == 0

    def test_release_keeps_blocks_warm(self, model):
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 300, 256), now=0.0)
        pool.release(1)
        assert pool.resident_blocks == 4 and pool.referenced_blocks == 0
        # A later request still hits the warm cache.
        assert pool.acquire(record(2, 300, 256), now=5.0).hit_tokens == 256
        pool.release(99)  # unknown rid: no-op
        assert pool.check_invariants() == []

    def test_kv_bits_width_is_sticky_max(self, model):
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 256, 256, kv_bits=2.3), now=0.0)
        key = pool.held_keys(1)[0]
        assert pool._blocks[key].kv_bits == 2.3
        # Wider joiner re-prefills (upgrade, a miss) and widens the block.
        up = pool.acquire(record(2, 256, 256, kv_bits=4.3), now=1.0)
        assert up.hit_tokens == 0 and up.upgraded_blocks == 4
        assert pool._blocks[key].kv_bits == 4.3
        # A narrower reader now hits for free; width never narrows.
        down = pool.acquire(record(3, 256, 256, kv_bits=2.3), now=2.0)
        assert down.hit_tokens == 256
        assert pool._blocks[key].kv_bits == 4.3


class TestTailAndCOW:
    def test_tail_shared_only_on_exact_prompt(self, model):
        pool = PrefixPool(make_allocator(model))
        # Prompt extends past the shared prefix: the partial block would
        # diverge inside, so only whole blocks are shared.
        a = pool.acquire(record(1, 300, 290), now=0.0)
        assert a.shared_tokens == 256 and a.tail_tokens == 0
        pool.release(1)
        # Prompt == shared prefix: the 34-token tail block is shared too.
        b = pool.acquire(record(2, 290, 290), now=1.0)
        assert b.shared_tokens == 290 and b.tail_tokens == 34

    def test_cow_tail_drops_only_the_tail(self, model):
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 290, 290), now=0.0)
        held = pool.held_keys(1)
        assert len(held) == 5
        pool.cow_tail(1)
        assert pool.held_keys(1) == held[:-1]
        assert pool._blocks[held[-1]].refcount == 0  # warm, unreferenced
        assert pool.cow_copies == 1
        assert pool.cow_tail(1) is None  # idempotent: tail already private
        assert pool.check_invariants() == []

    def test_cow_preserves_bit_exact_payload(self, model):
        """A sharer's divergence never mutates bytes others read: the
        dequantized stream a second sharer decodes is identical before
        and after the first sharer's copy-on-write."""
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 290, 290), now=0.0)
        pool.acquire(record(2, 290, 290), now=0.0)
        tail_key = pool.held_keys(1)[-1]
        rng = np.random.default_rng(0)
        codes, scale = quantize_symmetric(rng.normal(size=(34, 8)), bits=4)
        pool.attach_payload(tail_key, codes)
        reference = dequantize_symmetric(codes, scale).copy()
        # Request 1 diverges: it gets a private copy and scribbles on it.
        private = pool.cow_tail(1)
        private[:] = -private
        # Request 2 still decodes the original bytes, bit for bit.
        assert np.array_equal(
            dequantize_symmetric(pool.payload(tail_key), scale), reference
        )

    def test_cow_all_returns_private_token_count(self, model):
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 290, 290), now=0.0)
        pool.acquire(record(2, 290, 290), now=0.0)
        assert pool.cow_all(1) == 290
        assert pool.held_keys(1) == ()
        assert pool.cow_copies == 5
        # The other sharer is untouched.
        assert len(pool.held_keys(2)) == 5
        assert pool.check_invariants() == []
        assert pool.cow_all(1) == 0  # nothing left to copy


class TestEviction:
    def test_referenced_blocks_are_never_victims(self, model):
        pool = PrefixPool(make_allocator(model, total_blocks=8))
        pool.acquire(record(1, 256, 256), now=0.0)
        assert pool.evict_to_free(pool.allocator.total_blocks) == 0
        assert pool.resident_blocks == 4

    def test_lru_priority_order(self, model):
        pool = PrefixPool(make_allocator(model))
        pool.acquire(record(1, 128, 128, prefix_id=1, priority=0), now=0.0)
        pool.acquire(record(2, 128, 128, prefix_id=2, priority=5), now=1.0)
        pool.acquire(record(3, 128, 128, prefix_id=3, priority=0), now=2.0)
        for rid in (1, 2, 3):
            pool.release(rid)
        low1 = set(prefix_block_keys(1, 2, BT))
        high = set(prefix_block_keys(2, 2, BT))
        pool.evict_to_free(pool.allocator.free_blocks + 2)
        # Victims: lowest priority first, oldest last_used first.
        assert not low1 & set(pool._blocks)
        assert high <= set(pool._blocks)
        pool.evict_to_free(pool.allocator.free_blocks + 2)
        assert not set(prefix_block_keys(3, 2, BT)) & set(pool._blocks)
        assert high <= set(pool._blocks)  # high priority evicted last

    def test_pool_fraction_cap(self, model):
        pool = PrefixPool(
            make_allocator(model, total_blocks=16),
            PrefixCacheConfig(max_pool_fraction=0.25),
        )
        a = pool.acquire(record(1, 1024, 1024), now=0.0)
        # Cap = 4 blocks; the rest of the prefix stays private.
        assert pool.resident_blocks == 4
        assert a.shared_tokens == 4 * BT

    def test_evict_under_pressure_restores_utilization(self, model):
        alloc = make_allocator(model, total_blocks=16)
        pool = PrefixPool(alloc, PrefixCacheConfig(evict_pressure=0.5))
        pool.acquire(record(1, 12 * BT, 12 * BT), now=0.0)
        pool.release(1)
        assert alloc.utilization > 0.5
        evicted = pool.evict_under_pressure()
        assert evicted > 0
        assert alloc.utilization <= 0.5
        assert alloc.free_blocks + alloc.shared_blocks == alloc.total_blocks

    def test_full_lifecycle_conserves_blocks(self, model):
        alloc = make_allocator(model, total_blocks=32)
        pool = PrefixPool(alloc)
        for rid in range(6):
            pool.acquire(record(rid, 256, 256, prefix_id=rid % 3), now=float(rid))
        for rid in range(6):
            pool.release(rid)
        assert pool.check_invariants() == []
        pool.evict_to_free(alloc.total_blocks)
        assert pool.resident_blocks == 0
        assert alloc.free_blocks == alloc.total_blocks
        assert alloc.shared_blocks == 0


class TestTenantLedger:
    def test_bucket_refills_and_spends(self):
        ledger = TenantLedger(
            [TenantConfig(tenant_id=1, rate_tokens_per_s=100.0,
                          burst_tokens=200.0)]
        )
        assert ledger.has_budget(1, 200.0, now=0.0)
        ledger.spend(1, 200.0)
        assert not ledger.has_budget(1, 50.0, now=0.0)
        # has_budget never spends: asking twice changes nothing.
        assert ledger.has_budget(1, 50.0, now=0.5) == ledger.has_budget(
            1, 50.0, now=0.5
        )
        assert ledger.has_budget(1, 50.0, now=0.5)  # refilled 50 tokens
        assert not ledger.has_budget(1, 60.0, now=0.5)

    def test_unknown_tenant_uses_default_contract(self):
        ledger = TenantLedger(
            default=TenantConfig(tenant_id=0, rate_tokens_per_s=10.0,
                                 burst_tokens=10.0, weight=3.0)
        )
        assert not ledger.has_budget(42, 11.0, now=0.0)
        assert ledger.seen_tenants()[42]["weight"] == 3.0
        # No default at all: unlimited.
        assert TenantLedger().has_budget(42, 1e9, now=0.0)

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(ValueError):
            TenantLedger([TenantConfig(tenant_id=1), TenantConfig(tenant_id=1)])

    def test_fair_share_respects_weights_and_floor(self):
        ledger = TenantLedger(
            [
                TenantConfig(tenant_id=1, weight=1.0, burst_tokens=100.0),
                TenantConfig(tenant_id=2, weight=3.0, burst_tokens=100.0),
            ]
        )
        ledger.has_budget(2, 0.0, now=0.0)  # tenant 2 is "seen"
        # Below its own burst a tenant is never over share (the absolute
        # floor that keeps thousands-of-tenants entitlement sane).
        ledger.spend(1, 90.0)
        assert not ledger.over_fair_share(1, slack=1.0)
        ledger.spend(1, 910.0)
        ledger.spend(2, 100.0)
        # Tenant 1: share ~0.91 vs entitlement 0.25.
        assert ledger.over_fair_share(1, slack=2.0)
        # Tenant 2: share ~0.09 under a 0.75 entitlement.
        assert not ledger.over_fair_share(2, slack=1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TenantConfig(tenant_id=1, rate_tokens_per_s=0.0)
        with pytest.raises(ValueError):
            TenantConfig(tenant_id=1, burst_tokens=0.0)
        with pytest.raises(ValueError):
            TenantConfig(tenant_id=1, weight=0.0)


class TestTenantAdmission:
    def _engine(self, model, admission):
        return ServingEngine(
            model, METHOD, EngineConfig(slo=SLO(), admission=admission)
        )

    def test_tenant_rate_defers_that_tenant_only(self, model):
        engine = self._engine(
            model,
            AdmissionConfig(
                tenants=(
                    TenantConfig(tenant_id=1, rate_tokens_per_s=10.0,
                                 burst_tokens=600.0),
                ),
                max_queue_depth=None,
            ),
        )
        hog = Request(request_id=1, arrival_time=0.0, prompt_len=512,
                      gen_len=64, tenant_id=1)
        verdict = engine.submit(hog)
        assert verdict.value == "accept"
        second = Request(request_id=2, arrival_time=0.0, prompt_len=512,
                         gen_len=64, tenant_id=1)
        assert engine.submit(second).value == "defer"
        other = Request(request_id=3, arrival_time=0.0, prompt_len=512,
                        gen_len=64, tenant_id=2)
        assert engine.submit(other).value == "accept"

    def test_fair_share_gates_only_under_pressure(self, model):
        cfg = AdmissionConfig(
            default_tenant=TenantConfig(tenant_id=0, burst_tokens=100.0),
            fair_share_slack=1.0,
            fair_share_pressure=10.0,  # pressure mark never reached here
            max_queue_depth=None,
        )
        engine = self._engine(model, cfg)
        for rid in range(4):
            req = Request(request_id=rid, arrival_time=0.0, prompt_len=512,
                          gen_len=64, tenant_id=1)
            assert engine.submit(req).value == "accept"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(fair_share_slack=0.5)
        with pytest.raises(ValueError):
            AdmissionConfig(fair_share_pressure=-1.0)


class TestEngineIntegration:
    def _workload(self, n=120, seed=5, **kw):
        kw.setdefault("n_tenants", 40)
        kw.setdefault("zipf_s", 1.5)
        return zipf_shared_workload(
            n, arrival_rate=15.0, rng=np.random.default_rng(seed), **kw
        )

    def test_sharing_skips_prefill_and_conserves(self, model):
        engine = ServingEngine(
            model, METHOD, EngineConfig(prefix=PrefixCacheConfig())
        )
        metrics = engine.run(self._workload())
        assert metrics.completed == metrics.total
        assert metrics.prefix_hit_ratio > 0.3
        assert metrics.prefill_tokens_saved > 0
        assert metrics.shared_blocks > 0
        assert engine.prefix_pool.check_invariants() == []
        # All private blocks returned; only warm cache remains resident.
        alloc = engine.allocator
        assert alloc.free_blocks + alloc.shared_blocks == alloc.total_blocks

    def test_exact_replays_exercise_cow(self, model):
        engine = ServingEngine(
            model, METHOD, EngineConfig(prefix=PrefixCacheConfig())
        )
        metrics = engine.run(
            self._workload(suffix_len_range=(0, 0))  # prompts == prefixes
        )
        assert metrics.cow_copies > 0
        assert engine.prefix_pool.check_invariants() == []

    def test_pool_off_is_identical_to_seed_behaviour(self, model):
        """Prefix fields on requests are inert without a pool."""
        wl = self._workload()
        base = ServingEngine(model, METHOD, EngineConfig()).run(wl)
        assert base.prefix_hit_ratio != base.prefix_hit_ratio  # NaN
        assert base.shared_blocks == 0 and base.cow_copies == 0

    def test_ttft_win_at_equal_budget(self, model):
        wl = self._workload(n=200, seed=9)
        open_m = ServingEngine(model, METHOD, EngineConfig()).run(wl)
        pooled = ServingEngine(
            model, METHOD, EngineConfig(prefix=PrefixCacheConfig())
        ).run(wl)
        assert pooled.p50_ttft < open_m.p50_ttft

    def test_prefix_warmth_probe(self, model):
        engine = ServingEngine(
            model, METHOD, EngineConfig(prefix=PrefixCacheConfig())
        )
        engine.start()
        req = Request(request_id=900, arrival_time=0.0, prompt_len=256,
                      gen_len=8, prefix_id=77, shared_prefix_len=256)
        assert engine.prefix_warmth(req) == 0
        engine.run(
            [Request(request_id=i, arrival_time=0.0, prompt_len=256, gen_len=8,
                     prefix_id=77, shared_prefix_len=256) for i in range(3)]
        )
        assert engine.prefix_warmth(req) == 256
        # No pool: warmth is always zero.
        assert ServingEngine(model, METHOD, EngineConfig()).prefix_warmth(req) == 0


class TestClusterConservation:
    def test_blocks_conserved_under_admission_brownout_faults(self, model):
        """The acceptance matrix: prefix sharing composed with admission
        gates, precision brownout, and fault injection still returns
        every block exactly once and terminates every request."""
        wl = zipf_shared_workload(
            90, arrival_rate=12.0, n_tenants=30, zipf_s=1.5,
            rng=np.random.default_rng(3),
        )
        cfg = ClusterConfig(
            n_replicas=2,
            policy="affinity",
            engine=EngineConfig(
                slo=SLO(),
                prefix=PrefixCacheConfig(),
                deadline_shed=True,
                admission=AdmissionConfig(
                    max_queue_depth=None,
                    default_tenant=TenantConfig(
                        tenant_id=0, rate_tokens_per_s=3_000.0,
                        burst_tokens=30_000.0,
                    ),
                ),
                brownout=BrownoutConfig(),
            ),
            faults=FaultConfig(
                seed=4, crash_rate=0.02, stall_rate=0.02,
                crash_downtime_s=6.0, stall_duration_s=4.0,
                stall_slowdown=3.0, request_timeout_s=60.0, max_retries=3,
            ),
        )
        sim = ClusterSimulator(model, METHOD, cfg)
        metrics = sim.run(wl)
        assert (
            metrics.completed + metrics.failed + metrics.rejected + metrics.shed
            == metrics.total
        )
        for replica in sim.replicas:
            pool = replica.engine.prefix_pool
            assert pool is not None
            assert pool.check_invariants() == []
            alloc = replica.engine.allocator
            private = sum(a.blocks for a in alloc._allocs.values())
            assert (
                alloc.free_blocks + alloc.shared_blocks + private
                == alloc.total_blocks
            )

    def test_affinity_router_prefers_measured_warmth(self, model):
        wl = zipf_shared_workload(
            80, arrival_rate=10.0, n_tenants=12, zipf_s=1.6,
            rng=np.random.default_rng(8),
        )
        results = {}
        for policy in ("round_robin", "affinity"):
            sim = ClusterSimulator(
                model, METHOD,
                ClusterConfig(
                    n_replicas=3, policy=policy,
                    engine=EngineConfig(prefix=PrefixCacheConfig()),
                ),
            )
            results[policy] = sim.run(wl)
        assert (
            results["affinity"].prefix_hit_ratio
            >= results["round_robin"].prefix_hit_ratio
        )

"""Tests for the needle-in-a-haystack task."""

import numpy as np
import pytest

from repro.baselines import FP16Attention, KIVIAttention, KIVIConfig
from repro.core import TurboAttention, TurboConfig
from repro.models.config import MODEL_PRESETS
from repro.tasks.needle import NeedleTask, depth_sweep, evaluate_needle

MODEL = MODEL_PRESETS["phi3ish"]
QUICK = NeedleTask(
    prefill_len=264,  # 4 full blocks + 8-token buffer tail
    n_distractor_pairs=63,
    n_probes=12,
    value_coherence=0.96,
)


class TestConfig:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            NeedleTask(depth=1.5)
        with pytest.raises(ValueError):
            NeedleTask(n_probes=0)


class TestEvaluate:
    def test_fp16_retrieves_at_any_depth(self):
        for depth in (0.0, 0.5, 1.0):
            res = evaluate_needle(
                FP16Attention, NeedleTask(
                    prefill_len=264, n_distractor_pairs=63, n_probes=8,
                    value_coherence=0.96, depth=depth,
                ), MODEL,
            )
            assert res.accuracy == 1.0

    def test_turbo_tail_lossless(self):
        """A needle in the INT8 buffer tail (depth 1.0) reads back exactly
        under heavy body compression."""
        res = evaluate_needle(
            lambda: TurboAttention(TurboConfig(kv_bits=2)),
            NeedleTask(
                prefill_len=264, n_distractor_pairs=63, n_probes=8,
                value_coherence=0.96, depth=1.0,
            ),
            MODEL,
        )
        assert res.accuracy == 1.0

    def test_deterministic(self):
        a = evaluate_needle(FP16Attention, QUICK, MODEL)
        b = evaluate_needle(FP16Attention, QUICK, MODEL)
        assert a.accuracy == b.accuracy


class TestDepthSweep:
    def test_shapes_and_order(self):
        res = depth_sweep(FP16Attention, MODEL, depths=(0.0, 0.5, 1.0), task=QUICK, n_seeds=1)
        assert [r.depth for r in res] == [0.0, 0.5, 1.0]

    def test_turbo_beats_kivi2_in_body(self):
        """Mid-prompt needles: 2-bit KIVI loses them, turbo keeps most."""
        turbo = depth_sweep(
            lambda: TurboAttention(TurboConfig(kv_bits=2)),
            MODEL, depths=(0.25, 0.5), task=QUICK, n_seeds=2,
        )
        kivi = depth_sweep(
            lambda: KIVIAttention(KIVIConfig(bits=2)),
            MODEL, depths=(0.25, 0.5), task=QUICK, n_seeds=2,
        )
        assert np.mean([r.accuracy for r in turbo]) > np.mean(
            [r.accuracy for r in kivi]
        )

    def test_kivi_recency_window(self):
        """KIVI's FP16 residual makes end-of-prompt needles strictly easier
        than mid-prompt needles at 2-bit."""
        res = depth_sweep(
            lambda: KIVIAttention(KIVIConfig(bits=2)),
            MODEL, depths=(0.5, 1.0), task=QUICK, n_seeds=3,
        )
        assert res[1].accuracy >= res[0].accuracy

"""Tests for the tiled flash attention kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.flash import flash_attention
from repro.attention.masks import causal_mask
from repro.attention.reference import reference_attention


class TestExactness:
    def test_matches_reference(self, qkv):
        q, k, v = qkv
        out = flash_attention(q, k, v)
        np.testing.assert_allclose(out, reference_attention(q, k, v), atol=1e-12)

    def test_matches_reference_causal(self, qkv):
        q, k, v = qkv
        n = q.shape[1]
        out = flash_attention(q, k, v, causal=True)
        expected = reference_attention(q, k, v, mask=causal_mask(n, n))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    @given(
        st.integers(1, 3),  # heads
        st.integers(1, 70),  # n
        st.sampled_from([8, 16]),  # d
        st.sampled_from([1, 3, 16, 64]),  # block_q
        st.sampled_from([1, 5, 16, 64]),  # block_k
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_blocking_property(self, h, n, d, bq, bk, causal):
        rng = np.random.default_rng(h * 1000 + n * 10 + d + bq + bk)
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        out = flash_attention(q, k, v, block_q=bq, block_k=bk, causal=causal)
        mask = causal_mask(n, n) if causal else None
        expected = reference_attention(q, k, v, mask=mask)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_decode_shape(self, rng):
        # Fewer queries than keys (decode-aligned causal).
        q = rng.standard_normal((2, 1, 16))
        k = rng.standard_normal((2, 37, 16))
        v = rng.standard_normal((2, 37, 16))
        out = flash_attention(q, k, v, causal=True)
        expected = reference_attention(q, k, v, mask=causal_mask(1, 37))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_lse_matches_reference(self, qkv):
        q, k, v = qkv
        _, lse = flash_attention(q, k, v, return_lse=True)
        _, expected = reference_attention(q, k, v, return_lse=True)
        np.testing.assert_allclose(lse, expected, atol=1e-12)


class TestFP16Emulation:
    def test_error_small_but_nonzero(self, qkv):
        q, k, v = qkv
        exact = reference_attention(q, k, v)
        approx = flash_attention(q, k, v, emulate_fp16=True)
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert 0.0 < rel < 5e-3

    def test_causal_fp16(self, qkv):
        q, k, v = qkv
        n = q.shape[1]
        exact = reference_attention(q, k, v, mask=causal_mask(n, n))
        approx = flash_attention(q, k, v, causal=True, emulate_fp16=True)
        rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
        assert rel < 5e-3


class TestEarlyExit:
    def test_causal_skips_future_tiles(self, rng):
        """The causal early break must not change results (it only skips
        fully-masked tiles)."""
        q, k, v = (rng.standard_normal((1, 100, 8)) for _ in range(3))
        small = flash_attention(q, k, v, block_q=16, block_k=16, causal=True)
        big = flash_attention(q, k, v, block_q=100, block_k=100, causal=True)
        np.testing.assert_allclose(small, big, atol=1e-10)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need other seeds create their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def qkv(rng):
    """Small multi-head Q/K/V triple of shape (4, 96, 32)."""
    h, n, d = 4, 96, 32
    return (
        rng.standard_normal((h, n, d)),
        rng.standard_normal((h, n, d)),
        rng.standard_normal((h, n, d)),
    )

"""Coverage for remaining branches: SAS-driven online softmax, kernel-sim
prefill paths, float-format metadata, model parameter accounting."""

import numpy as np
import pytest

from repro.attention.online_softmax import OnlineSoftmaxState
from repro.attention.reference import softmax
from repro.fp.formats import BF16, FP16, FP32
from repro.models.config import MODEL_PRESETS
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.perf.kernelsim import simulate_attention_kernel
from repro.sas.softmax import SAS, SASConfig


class TestSASOnlineSoftmax:
    def test_state_with_sas_exp(self, rng):
        """The online softmax driven by SAS matches the exact softmax to
        within the SAS approximation error."""
        scores = rng.standard_normal((3, 4, 40)) * 2
        values = rng.standard_normal((3, 40, 8))
        state = OnlineSoftmaxState.initial((3,), 4, d_v=8, exp_fn=SAS())
        for s in range(0, 40, 16):
            state.update(scores[..., s : s + 16], values=values[..., s : s + 16, :])
        out, _ = state.finalize()
        expected = softmax(scores) @ values
        rel = np.linalg.norm(out - expected) / np.linalg.norm(expected)
        assert rel < 5e-3

    def test_sas_sparsifies_tail(self, rng):
        """Scores 6+ below the running max contribute exactly zero mass."""
        sas = SAS(SASConfig(threshold=-6))
        scores = np.array([[0.0, -7.0, -10.0, -1.0]])
        state = OnlineSoftmaxState.initial((), 1, d_v=2, exp_fn=sas)
        v = np.eye(4, 2) * 100.0
        state.update(scores, values=v)
        out, _ = state.finalize()
        p_exact = softmax(scores)
        # Rows 1 and 2 are zeroed by SAS; output is a mix of rows 0 and 3.
        assert out[0, 1] < p_exact[0, 1] * 100 * 0.5


class TestKernelSimBranches:
    @pytest.fixture(scope="class")
    def model(self):
        return ModelGeometry.phi3_medium()

    def test_dequant_prefill_has_pack_phase(self, model):
        t = simulate_attention_kernel(
            METHODS["kivi4"], model.attention_geometry(2, 2048, 2048), prefill=True
        )
        assert t["quantize"] > 0  # the compression kernel
        assert t["dequant"] == 0  # no decompression during prefill

    def test_gear_prefill_costs_more_than_kivi(self, model):
        g = model.attention_geometry(2, 2048, 2048)
        kivi = simulate_attention_kernel(METHODS["kivi4"], g, prefill=True)
        gear = simulate_attention_kernel(METHODS["gear4"], g, prefill=True)
        # GEAR's factor build shows in the decode pipeline instead; its
        # prefill matches KIVI's within the shared-phase structure.
        assert gear["total"] >= kivi["total"] * 0.99

    def test_noncausal_decode_covers_all_tiles(self, model):
        g = model.attention_geometry(1, 1, 4096, causal=True)
        t = simulate_attention_kernel(METHODS["fp16"], g, prefill=False)
        # 64 key tiles of 64 tokens -> load_kv dominates with 4096 tokens.
        assert t["load_kv"] > t["qk_matmul"]

    def test_custom_blocks(self, model):
        g = model.attention_geometry(1, 256, 256)
        small = simulate_attention_kernel(METHODS["fp16"], g, True, block_q=32, block_k=32)
        large = simulate_attention_kernel(METHODS["fp16"], g, True, block_q=128, block_k=128)
        # Same work, different tiling: totals within 2x of each other.
        assert 0.5 < small["total"] / large["total"] < 2.0


class TestFloatFormatMetadata:
    def test_max_values(self):
        assert FP16.max_value == pytest.approx(65504.0)
        assert BF16.max_value > 1e38
        assert FP32.max_value > 1e38

    def test_eps_ordering(self):
        assert FP32.eps < FP16.eps < BF16.eps


class TestModelParamCounts:
    def test_param_count_scales_with_layers(self):
        a = MODEL_PRESETS["llama3ish"]
        import dataclasses

        b = dataclasses.replace(a, n_layers=8)
        assert b.param_count() > 1.8 * a.param_count()

    def test_gqa_reduces_params(self):
        import dataclasses

        mha = MODEL_PRESETS["phi3ish"]
        gqa = dataclasses.replace(mha, n_kv_heads=2, name="gqa")
        assert gqa.param_count() < mha.param_count()

"""Tests for repro.recover: snapshots, WAL, warm restart, fleet ops."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    FaultConfig,
    downtime_within,
)
from repro.core.serialization import (
    CacheCorruptionError,
    salvage_state,
    state_digest,
    state_from_arrays,
)
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.recover import (
    FleetOp,
    RecoverConfig,
    WriteAheadLog,
    corrupt_snapshot_payload,
    snapshot_payload,
    take_snapshot,
    verify_snapshot,
)
from repro.serving import EngineConfig, Request, ServingEngine
from repro.serving.request import RequestRecord, RequestStatus
from repro.serving.workload import ramp_workload
from repro.sim import ListTraceSink, diff_traces, format_diff, trace_digest


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


def _workload(n_scale=1.0):
    # Hot enough that a crash's evictions land on an already-busy
    # survivor: that is the regime where cold re-prefill queues behind
    # live work and the warm restart's recompute range wins the tail.
    return ramp_workload(
        [(0.8, 12.0 * n_scale), (1.2, 20.0 * n_scale), (0.8, 12.0 * n_scale)],
        prompt_range=(3072, 6144),
        gen_range=(128, 256),
        rng=np.random.default_rng(21),
    )


CRASHY = FaultConfig(
    seed=7, crash_rate=0.04, crash_downtime_s=4.0, max_retries=5,
    horizon_pad_s=10.0,
)


def _run(model, *, faults=CRASHY, recover=None, ops=(), n_replicas=2,
         trace=None, workload=None):
    config = ClusterConfig(
        n_replicas=n_replicas, policy="least_kv",
        engine=EngineConfig(prefill_chunk=256),
        faults=faults, recover=recover, ops=tuple(ops),
    )
    sim = ClusterSimulator(model, METHODS["turbo4"], config, trace=trace)
    metrics = sim.run(workload if workload is not None else _workload())
    return sim, metrics


def _assert_conserved(sim, metrics, workload, label=""):
    seen = dict(sim.failed)
    for replica in sim.replicas:
        for rid, rec in replica.records.items():
            assert rid not in seen, f"{label}: rid {rid} terminated twice"
            seen[rid] = rec
    assert set(seen) == {r.request_id for r in workload}, label
    assert (
        metrics.completed + metrics.failed + metrics.rejected + metrics.shed
        == metrics.total == len(workload)
    ), label


class TestRecoverConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoverConfig(snapshot_interval_s=0.0)
        with pytest.raises(ValueError):
            RecoverConfig(keep_epochs=0)
        with pytest.raises(ValueError):
            RecoverConfig(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            RecoverConfig(payload_blocks=1)

    def test_payload_tokens(self):
        cfg = RecoverConfig(payload_blocks=4, payload_block_tokens=16)
        assert cfg.payload_tokens == 64


class TestFleetOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetOp(time=0.0, kind="reboot")
        with pytest.raises(ValueError):
            FleetOp(time=-1.0, kind="drain")
        with pytest.raises(ValueError):
            FleetOp(time=0.0, kind="drain", poll_s=0.0)


class TestWriteAheadLog:
    def test_records_reuse_trace_schema(self):
        wal = WriteAheadLog(clock="replica0")
        wal.append("submit", 5, 1.0)
        wal.append("submit", 7, 2.0)
        rec = wal.records[0]
        assert set(rec) == {"i", "clock", "action", "ev", "t", "label"}
        assert rec["action"] == "mark" and rec["label"] == "r5"
        assert [r["i"] for r in wal.records] == [0, 1]

    def test_truncate_keeps_sequence_monotonic(self):
        wal = WriteAheadLog(clock="replica0")
        wal.append("submit", 1, 0.0)
        assert wal.truncate() == 1
        wal.append("submit", 2, 1.0)
        assert wal.records[0]["i"] == 1  # sequence survives the truncate
        assert len(wal) == 1

    def test_replay_plan_splits_warm_and_cold(self):
        wal = WriteAheadLog(clock="replica0")
        for rid in (5, 7, 5):  # duplicate submits dedupe oldest-first
            wal.append("submit", rid, float(rid))
        assert wal.request_ids() == [5, 7]
        assert wal.replay_plan({5}) == {5: "warm", 7: "cold"}

    def test_digest_is_content_addressed(self):
        a, b = WriteAheadLog(clock="x"), WriteAheadLog(clock="x")
        for wal in (a, b):
            wal.append("submit", 1, 0.5)
        assert a.digest() == b.digest()
        b.append("submit", 2, 0.6)
        assert a.digest() != b.digest()


class TestSnapshotPayload:
    CFG = RecoverConfig(seed=3)

    def test_payload_is_deterministic_per_epoch(self):
        a = snapshot_payload(0, 4, self.CFG)
        b = snapshot_payload(0, 4, self.CFG)
        assert state_digest(a) == state_digest(b)
        assert state_digest(a) != state_digest(snapshot_payload(0, 5, self.CFG))
        assert state_digest(a) != state_digest(snapshot_payload(1, 4, self.CFG))

    def test_payload_round_trips_through_real_schema(self):
        arrays = snapshot_payload(0, 0, self.CFG)
        state = state_from_arrays(arrays)  # checksums verify clean
        assert state.cache.seq_len == self.CFG.payload_tokens

    def test_corruption_is_detected_and_salvage_is_bit_exact(self):
        # Scan epochs for one where salvage keeps a non-trivial prefix,
        # then check the kept blocks match the original bit-for-bit.
        cfg = self.CFG
        for epoch in range(32):
            arrays = snapshot_payload(0, epoch, cfg)
            damaged, event = corrupt_snapshot_payload(dict(arrays), 0, epoch, cfg)
            try:
                state_from_arrays(damaged)
                continue  # damage missed the checksummed payload
            except CacheCorruptionError:
                pass
            try:
                result = salvage_state(damaged)
            except CacheCorruptionError:
                continue  # metadata destroyed: ladder would degrade
            kept_blocks = result.state.cache.seq_len // cfg.payload_block_tokens
            if kept_blocks == 0 or kept_blocks == cfg.payload_blocks:
                continue
            original = state_from_arrays(arrays)
            for b in range(kept_blocks):
                for orig, salv in (
                    (original.cache.blocks[b], result.state.cache.blocks[b]),
                ):
                    np.testing.assert_array_equal(orig.k.codes, salv.k.codes)
                    np.testing.assert_array_equal(orig.v.codes, salv.v.codes)
            return
        pytest.fail("no epoch produced a salvageable partial prefix")

    def test_corruption_is_deterministic(self):
        a, _ = corrupt_snapshot_payload(snapshot_payload(2, 9, self.CFG), 2, 9, self.CFG)
        b, _ = corrupt_snapshot_payload(snapshot_payload(2, 9, self.CFG), 2, 9, self.CFG)
        assert state_digest(a) == state_digest(b)


class TestTakeAndVerifySnapshot:
    def _engine(self, model):
        engine = ServingEngine(model, METHODS["turbo4"], EngineConfig())
        for i in range(3):
            engine.submit(Request(i, 0.0, 512, 32))
        for _ in range(8):
            engine.step()
        return engine

    def test_snapshot_captures_progress_by_value(self, model):
        engine = self._engine(model)
        cfg = RecoverConfig()
        snap = take_snapshot(0, engine, 0, engine.clock, cfg, model, 4.3)
        assert {s.rid for s in snap.requests} == {0, 1, 2}
        by_rid = {s.rid: s for s in snap.requests}
        for rid, s in by_rid.items():
            assert s.prefilled == engine.records[rid].prefilled
            assert s.generated == engine.records[rid].generated
        assert snap.nbytes > 0
        # Mutating the engine afterwards must not change the snapshot.
        engine.step()
        assert by_rid[0].prefilled == snap.requests[0].prefilled

    def test_snapshot_digest_is_stable(self, model):
        engine = self._engine(model)
        cfg = RecoverConfig()
        a = take_snapshot(0, engine, 0, engine.clock, cfg, model, 4.3)
        b = take_snapshot(0, engine, 0, engine.clock, cfg, model, 4.3)
        assert a.digest == b.digest
        c = take_snapshot(0, engine, 1, engine.clock, cfg, model, 4.3)
        assert a.digest != c.digest  # epoch is part of the identity

    def test_verify_ladder_values(self, model):
        engine = self._engine(model)
        # corrupt_rate=1: every epoch rolls corrupt; verification is
        # deterministic, so two verifies of one epoch agree.
        cfg = RecoverConfig(seed=11, corrupt_rate=1.0)
        intact = take_snapshot(0, engine, 0, engine.clock,
                               RecoverConfig(seed=11), model, 4.3)
        assert verify_snapshot(intact, cfg) == (cfg.payload_tokens,
                                                cfg.payload_tokens)
        corrupt = take_snapshot(0, engine, 0, engine.clock, cfg, model, 4.3)
        assert corrupt.corrupt
        kept_a, total = verify_snapshot(corrupt, cfg)
        kept_b, _ = verify_snapshot(corrupt, cfg)
        assert kept_a == kept_b and 0 <= kept_a <= total

    def test_salvage_disabled_degrades_to_zero(self, model):
        engine = self._engine(model)
        cfg = RecoverConfig(seed=11, corrupt_rate=1.0, salvage=False)
        snap = take_snapshot(0, engine, 0, engine.clock, cfg, model, 4.3)
        assert verify_snapshot(snap, cfg) == (0, cfg.payload_tokens)


class TestResetForRecovery:
    def test_waste_is_the_lost_delta(self):
        rec = RequestRecord(Request(0, 0.0, 1000, 100))
        rec.prefilled, rec.generated = 1000, 40
        rec.first_token_at = 2.0
        rec.retries = 1
        rec.reset_for_recovery(600, 0)
        assert rec.wasted_prefill_tokens == 400
        assert rec.wasted_decode_tokens == 40
        assert rec.prefilled == 600 and rec.generated == 0
        assert rec.first_token_at is None  # decode progress lost
        assert rec.status is RequestStatus.WAITING
        assert rec.retries == 1  # recovery is not a retry
        assert rec.recoveries == 1

    def test_decode_progress_keeps_first_token(self):
        rec = RequestRecord(Request(0, 0.0, 100, 50))
        rec.prefilled, rec.generated = 100, 30
        rec.reset_for_recovery(100, 20, first_token_at=1.5)
        assert rec.first_token_at == 1.5
        assert rec.wasted_prefill_tokens == 0
        assert rec.wasted_decode_tokens == 10

    def test_negative_progress_rejected(self):
        rec = RequestRecord(Request(0, 0.0, 100, 50))
        with pytest.raises(ValueError):
            rec.reset_for_recovery(-1, 0)


class TestRestoreRecord:
    def _engine(self, model, **overrides):
        return ServingEngine(model, METHODS["turbo4"],
                             EngineConfig(**overrides))

    def test_restore_resumes_decode_in_place(self, model):
        engine = self._engine(model)
        rec = RequestRecord(Request(0, 0.0, 512, 32))
        rec.prefilled, rec.generated = 512, 10
        rec.first_token_at = 1.0
        assert engine.restore_record(rec)
        assert rec.status is RequestStatus.RUNNING
        assert 0 in engine.running
        while engine.busy:
            engine.step()
        assert rec.status is RequestStatus.FINISHED
        assert rec.generated == 32  # only the remaining 22 were decoded

    def test_restore_mid_prefill_recomputes_only_the_tail(self, model):
        engine = self._engine(model)
        rec = RequestRecord(Request(0, 0.0, 1024, 8))
        rec.prefilled = 700
        assert engine.restore_record(rec)
        assert rec.status is RequestStatus.PREFILLING
        while engine.busy:
            engine.step()
        assert rec.status is RequestStatus.FINISHED
        assert rec.wasted_prefill_tokens == 0

    def test_duplicate_rid_rejected(self, model):
        engine = self._engine(model)
        engine.submit(Request(0, 0.0, 128, 8))
        with pytest.raises(ValueError):
            engine.restore_record(RequestRecord(Request(0, 0.0, 128, 8)))

    def test_prefill_only_restore_reparks_migrating(self, model):
        engine = self._engine(model, prefill_only=True)
        rec = RequestRecord(Request(0, 0.0, 512, 32))
        rec.prefilled = 512
        assert engine.restore_record(rec)
        assert rec.status is RequestStatus.MIGRATING
        assert 0 in engine.migrating and 0 in engine.handoff_ready

    def test_oom_restore_degrades_to_cold_waiting(self, model):
        # A KV budget too small for the restored context: the restore
        # falls back to a cold re-entry, charging the checkpointed
        # progress as waste instead of faking resident KV.
        engine = self._engine(model, kv_budget_bytes=1.0)
        rec = RequestRecord(Request(0, 0.0, 4096, 8))
        rec.prefilled, rec.generated = 4096, 4
        assert not engine.restore_record(rec)
        assert rec.status is RequestStatus.WAITING
        assert rec.prefilled == 0 and rec.generated == 0
        assert rec.wasted_prefill_tokens == 4096
        assert rec.wasted_decode_tokens == 4
        assert 0 in engine.waiting


class TestWarmRestartCluster:
    def test_warm_restart_reduces_waste_under_identical_crashes(self, model):
        wl = _workload()
        _, cold = _run(model, workload=wl)
        sim, warm = _run(
            model, recover=RecoverConfig(snapshot_interval_s=1.5, seed=11),
            workload=wl,
        )
        assert cold.crashes == warm.crashes > 0  # identical schedule fired
        assert warm.warm_restarts == warm.crashes
        assert warm.recovered_requests > 0
        wasted_cold = cold.wasted_prefill_tokens + cold.wasted_decode_tokens
        wasted_warm = warm.wasted_prefill_tokens + warm.wasted_decode_tokens
        assert wasted_warm < wasted_cold
        assert warm.p99_ttft < cold.p99_ttft
        assert warm.snapshots_taken > 0 and warm.snapshot_bytes > 0
        _assert_conserved(sim, warm, wl, "warm")

    def test_crash_and_restart_runs_are_byte_identical(self, model):
        wl = _workload()
        sinks = []
        for _ in range(2):
            sink = ListTraceSink()
            _run(
                model,
                recover=RecoverConfig(
                    snapshot_interval_s=1.5, seed=11, corrupt_rate=0.4
                ),
                workload=wl, trace=sink,
            )
            sinks.append(sink)
        diff = diff_traces(sinks[0].records, sinks[1].records)
        assert diff is None, format_diff(diff, "run1", "run2")
        assert trace_digest(sinks[0].records) == trace_digest(sinks[1].records)

    def test_conservation_matrix(self, model):
        """crash x snapshot-corruption x fleet-ops cells all conserve."""
        wl = _workload(0.6)
        ops_cells = (
            (),
            (FleetOp(time=4.0, kind="drain", replica_id=1),
             FleetOp(time=9.0, kind="rolling_restart")),
        )
        for corrupt_rate in (0.0, 0.7):
            for ops in ops_cells:
                for faults in (None, CRASHY):
                    recover = RecoverConfig(
                        snapshot_interval_s=1.5, seed=11,
                        corrupt_rate=corrupt_rate,
                    )
                    sim, m = _run(
                        model, faults=faults, recover=recover, ops=ops,
                        n_replicas=3, workload=wl,
                    )
                    label = (
                        f"corrupt={corrupt_rate}/ops={bool(ops)}/"
                        f"faults={bool(faults)}"
                    )
                    _assert_conserved(sim, m, wl, label)
                    if ops:
                        assert m.drains >= 1, label
                        assert m.rolling_restarts == 1, label

    def test_corrupt_epochs_walk_the_ladder(self, model):
        wl = _workload()
        sim, m = _run(
            model,
            recover=RecoverConfig(
                snapshot_interval_s=1.5, seed=11, corrupt_rate=1.0,
                keep_epochs=2,
            ),
            workload=wl,
        )
        assert m.crashes > 0
        # Every epoch is corrupt, so every restart hits the ladder.
        assert m.snapshot_corruptions > 0
        assert m.snapshot_salvages + m.cold_restores > 0
        _assert_conserved(sim, m, wl, "ladder")

    def test_recover_disabled_is_byte_identical_to_baseline(self, model):
        """recover=None must not perturb the classic event stream."""
        wl = _workload(0.6)
        sinks = []
        for recover in (None, None):
            sink = ListTraceSink()
            _run(model, recover=recover, workload=wl, trace=sink)
            sinks.append(sink)
        assert trace_digest(sinks[0].records) == trace_digest(sinks[1].records)

    def test_restored_tokens_show_up_in_counters(self, model):
        wl = _workload()
        _, m = _run(
            model, recover=RecoverConfig(snapshot_interval_s=1.5, seed=11),
            workload=wl,
        )
        assert m.restored_prefill_tokens > 0
        assert m.recoveries >= m.recovered_requests > 0


class TestFleetOps:
    def test_drain_and_rolling_restart_drop_nothing(self, model):
        wl = _workload()
        sim, m = _run(
            model, faults=None,
            recover=RecoverConfig(snapshot_interval_s=2.0),
            ops=(FleetOp(time=4.0, kind="drain", replica_id=0),
                 FleetOp(time=10.0, kind="rolling_restart")),
            n_replicas=3, workload=wl,
        )
        assert m.failed == 0
        assert m.drains == 4  # 1 targeted + 3 from the rolling restart
        assert m.rolling_restarts == 1
        _assert_conserved(sim, m, wl, "ops")
        # Everyone rejoined: the fleet ends fully dispatchable.
        assert all(r.dispatchable for r in sim.replicas)

    def test_ops_without_recover_config_still_run(self, model):
        """Fleet ops are independent of checkpointing."""
        wl = _workload(0.6)
        sim, m = _run(
            model, faults=None, recover=None,
            ops=(FleetOp(time=4.0, kind="drain", replica_id=1),),
            n_replicas=3, workload=wl,
        )
        assert m.drains == 1 and m.failed == 0
        _assert_conserved(sim, m, wl, "ops-no-recover")


class TestAvailabilityMath:
    def test_downtime_within_clips_and_sums(self):
        windows = [(0.0, 5.0), (2.0, 7.0), (90.0, 110.0)]
        # Overlap across replicas is summed (two boxes down = 2x cost);
        # the window crossing the horizon is clipped at it.
        assert downtime_within(windows, 100.0) == pytest.approx(20.0)
        assert downtime_within(windows, 4.0) == pytest.approx(6.0)
        assert downtime_within([], 100.0) == 0.0

    def test_availability_is_a_probability_under_dense_faults(self, model):
        """Overlapping crash downtime must never push availability out of
        [0, 1], even when scheduled downtime exceeds the makespan."""
        wl = _workload(0.5)
        for seed in range(6):
            dense = FaultConfig(
                seed=seed, crash_rate=0.5, crash_downtime_s=30.0,
                max_retries=8, horizon_pad_s=60.0,
            )
            for recover in (None, RecoverConfig(snapshot_interval_s=2.0)):
                _, m = _run(model, faults=dense, recover=recover,
                            n_replicas=2, workload=wl)
                assert 0.0 <= m.availability <= 1.0, (
                    f"seed={seed} recover={recover is not None}: "
                    f"availability={m.availability}"
                )
                if m.crashes:
                    assert m.downtime_s > 0.0

"""Tests for SAS: polynomial, LUT, and the approximate softmax."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sas.lut import ExpLUT
from repro.sas.poly import PAPER_POLY_COEFFS, fit_exp_poly, poly_eval, poly_max_error
from repro.sas.softmax import SAS, SASConfig, sas_exp, sas_softmax


class TestPoly:
    def test_paper_coeffs_accurate(self):
        # Eq. 15's fit is accurate to ~4e-4 on [0, 1].
        assert poly_max_error(PAPER_POLY_COEFFS) < 5e-4

    def test_refit_recovers_paper_coeffs(self):
        refit = fit_exp_poly(degree=3)
        np.testing.assert_allclose(refit, PAPER_POLY_COEFFS, atol=2e-3)

    def test_refit_at_least_as_good(self):
        assert poly_max_error(tuple(fit_exp_poly(3))) <= poly_max_error() + 1e-6

    def test_higher_degree_better(self):
        e2 = poly_max_error(tuple(fit_exp_poly(2)))
        e3 = poly_max_error(tuple(fit_exp_poly(3)))
        e4 = poly_max_error(tuple(fit_exp_poly(4)))
        assert e4 < e3 < e2

    def test_horner_matches_polyval(self, rng):
        xs = rng.uniform(0, 1, 100)
        np.testing.assert_allclose(
            poly_eval(xs, PAPER_POLY_COEFFS), np.polyval(PAPER_POLY_COEFFS, xs), rtol=1e-12
        )

    def test_fp16_mode_close(self, rng):
        xs = rng.uniform(0, 1, 100)
        exact = poly_eval(xs, PAPER_POLY_COEFFS)
        fp16 = poly_eval(xs, PAPER_POLY_COEFFS, emulate_fp16=True)
        assert np.max(np.abs(exact - fp16)) < 3e-3

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            fit_exp_poly(degree=0)


class TestLUT:
    def test_entries_are_exp(self):
        lut = ExpLUT(threshold=-6)
        np.testing.assert_allclose(lut.table[:7], np.exp(-np.arange(7)))
        assert lut.table[-1] == 0.0  # sentinel

    def test_lookup_clamps_to_sentinel(self):
        lut = ExpLUT(threshold=-6)
        assert lut.lookup(np.array([100]))[0] == 0.0

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            ExpLUT().lookup(np.array([-1]))

    def test_nonnegative_threshold_raises(self):
        with pytest.raises(ValueError):
            ExpLUT(threshold=0)

    def test_size_tracks_threshold(self):
        assert len(ExpLUT(threshold=-6)) == 8
        assert len(ExpLUT(threshold=-10)) == 12
        assert ExpLUT(threshold=-6).storage_bytes == 16  # fits in registers


class TestSASExp:
    def test_accuracy_in_active_range(self):
        sas = SAS(SASConfig(threshold=-6))
        assert sas.max_abs_error() < 1e-3

    def test_zero_maps_near_one(self):
        sas = SAS()
        assert sas(np.array([0.0]))[0] == pytest.approx(1.0, abs=1e-3)

    def test_sparsity_below_threshold(self):
        sas = SAS(SASConfig(threshold=-6))
        xs = np.array([-6.01, -100.0, -1e20])
        np.testing.assert_array_equal(sas(xs), 0.0)

    def test_boundary_is_active(self):
        sas = SAS(SASConfig(threshold=-6))
        assert sas(np.array([-6.0]))[0] > 0.0

    def test_non_finite_maps_to_zero(self):
        sas = SAS()
        np.testing.assert_array_equal(sas(np.array([-np.inf, np.nan])), 0.0)

    def test_positive_rounding_noise_clamped(self):
        sas = SAS()
        out = sas(np.array([1e-9, 0.01]))
        assert np.all(out <= 1.0 + 1e-3)

    def test_monotone_on_grid(self):
        sas = SAS()
        xs = np.linspace(-5.999, 0, 1000)
        out = sas(xs)
        assert np.all(np.diff(out) >= -2e-3)  # approximately monotone

    @given(st.floats(min_value=-6, max_value=0))
    @settings(max_examples=100, deadline=None)
    def test_pointwise_error_property(self, x):
        sas = SAS()
        assert abs(sas(np.array([x]))[0] - np.exp(x)) < 1e-3

    def test_fp16_mode_still_accurate(self):
        sas = SAS(SASConfig(emulate_fp16=True))
        assert sas.max_abs_error(n_points=2001) < 3e-3


class TestSASSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = sas_softmax(rng.standard_normal((6, 40)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-12)

    def test_close_to_exact_softmax(self, rng):
        x = rng.standard_normal((6, 40)) * 2
        from repro.attention.reference import softmax

        err = np.abs(sas_softmax(x) - softmax(x)).max()
        assert err < 2e-3

    def test_sparsification_zeroes_small_probs(self, rng):
        x = np.array([[0.0, -10.0, -20.0]])
        p = sas_softmax(x, SASConfig(threshold=-6))
        assert p[0, 1] == 0.0 and p[0, 2] == 0.0
        assert p[0, 0] == 1.0

    def test_never_nan_on_constant_rows(self):
        p = sas_softmax(np.zeros((3, 5)))
        np.testing.assert_allclose(p, 0.2)

    def test_invalid_coherence_of_config(self):
        with pytest.raises(ValueError):
            ExpLUT(threshold=1)

"""Tests for e2e latency, memory, throughput, and the kernel simulator."""

import pytest

from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry, e2e_step_latency, linear_counts, phase_breakdown
from repro.perf.gpu import A100_80GB
from repro.perf.kernelsim import simulate_attention_kernel
from repro.perf.memory import MemoryModel, paper_memory_model
from repro.perf.throughput import generation_throughput, max_throughput


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


@pytest.fixture(scope="module")
def mem(model):
    return paper_memory_model(model)


class TestModelGeometry:
    def test_phi3_medium_shape(self, model):
        assert model.d_model == 5120
        assert model.n_kv_heads == 10
        # ~14B linear parameters (Phi3-medium is a 14B model).
        assert 12e9 < model.linear_params < 16e9

    def test_weight_bytes_fp16(self, model):
        assert model.weight_bytes == model.linear_params * 2

    def test_attention_geometry_passthrough(self, model):
        g = model.attention_geometry(4, 1, 1024)
        assert g.n_heads == 40 and g.kv_len == 1024


class TestLinearCounts:
    def test_flops_scale_with_tokens(self, model):
        c1 = linear_counts(model, 1, 128)
        c2 = linear_counts(model, 1, 256)
        assert c2.fp16_tc == pytest.approx(2 * c1.fp16_tc)

    def test_decode_is_weight_bound(self, model):
        """At batch 1 the weight read dominates decode linear latency."""
        c = linear_counts(model, 1, 1)
        assert A100_80GB.memory_time(c) > A100_80GB.tensor_time(c)


class TestE2E:
    def test_prefill_dominated_by_compute_at_long_ctx(self, model):
        lat = e2e_step_latency(METHODS["fp16"], model, 1, 32768, 32768, prefill=True)
        assert lat > 1.0  # seconds of GEMM work

    def test_turbo_e2e_faster(self, model):
        base = e2e_step_latency(METHODS["fp16"], model, 4, 1, 8192, prefill=False)
        turbo = e2e_step_latency(METHODS["turbo_mixed"], model, 4, 1, 8192, prefill=False)
        assert turbo < base

    def test_phase_breakdown_sums(self, model):
        parts = phase_breakdown(METHODS["fp16"], model, 4, 4096, 256)
        assert parts["total"] == pytest.approx(parts["linear"] + parts["attention"])

    def test_attention_share_grows_with_context(self, model):
        shares = []
        for n in (1024, 16384, 65536):
            p = phase_breakdown(METHODS["fp16"], model, 8, n, n // 8)
            shares.append(p["attention"] / p["total"])
        assert shares[0] < shares[1] < shares[2]
        assert shares[2] > 0.6  # Figure 1a: ~80% at >80k


class TestMemoryModel:
    def test_fp16_ooms_past_4k_at_batch4(self, model, mem):
        """Figure 6's OOM boundary."""
        assert mem.fits(METHODS["fp16"], 4, 4096)
        assert not mem.fits(METHODS["fp16"], 4, 8192)

    def test_turbo_reaches_32k(self, model, mem):
        assert mem.fits(METHODS["turbo_mixed"], 4, 32768)

    def test_max_batch_ordering(self, model, mem):
        b_fp16 = mem.max_batch(METHODS["fp16"], 1149)
        b_kivi = mem.max_batch(METHODS["kivi4"], 1149)
        b_turbo = mem.max_batch(METHODS["turbo_mixed"], 1149)
        assert b_fp16 < b_kivi < b_turbo

    def test_max_context_monotone_in_batch(self, model, mem):
        assert mem.max_context(METHODS["fp16"], 1) > mem.max_context(METHODS["fp16"], 8)

    def test_kv_bytes_linear_in_context(self, model, mem):
        a = mem.kv_bytes(METHODS["fp16"], 1, 1000)
        b = mem.kv_bytes(METHODS["fp16"], 1, 2000)
        assert b == pytest.approx(2 * a)

    def test_ideal_model_fits_more(self, model):
        ideal = MemoryModel(model)
        paper = paper_memory_model(model)
        assert ideal.max_batch(METHODS["fp16"], 1149) > paper.max_batch(
            METHODS["fp16"], 1149
        )


class TestThroughput:
    def test_oom_point(self, model, mem):
        p = generation_throughput(METHODS["fp16"], model, 4096, 1024, 125, memory=mem)
        assert p.oom and p.tokens_per_second == 0.0

    def test_throughput_grows_with_batch(self, model, mem):
        p1 = generation_throughput(METHODS["turbo4"], model, 1, 1024, 125, memory=mem)
        p8 = generation_throughput(METHODS["turbo4"], model, 8, 1024, 125, memory=mem)
        assert p8.tokens_per_second > p1.tokens_per_second

    def test_max_throughput_ordering(self, model, mem):
        """Figure 7a: turbo > kivi/gear > fp16 at max batch."""
        best = {
            name: max_throughput(METHODS[name], model, 1024, 125, memory=mem)
            for name in ("fp16", "kivi4", "gear4", "turbo_mixed")
        }
        assert best["turbo_mixed"].tokens_per_second > best["kivi4"].tokens_per_second
        assert best["kivi4"].tokens_per_second > best["fp16"].tokens_per_second
        ratio = best["turbo_mixed"].tokens_per_second / best["fp16"].tokens_per_second
        assert 1.5 < ratio < 3.0  # paper: 2.37x

    def test_max_throughput_uses_larger_batch_for_compressed(self, model, mem):
        fp16 = max_throughput(METHODS["fp16"], model, 1024, 125, memory=mem)
        turbo = max_throughput(METHODS["turbo_mixed"], model, 1024, 125, memory=mem)
        assert turbo.batch > 3 * fp16.batch


class TestKernelSim:
    def test_phase_shares_sum_to_one(self, model):
        t = simulate_attention_kernel(
            METHODS["fp16"], model.attention_geometry(4, 1, 8192), prefill=False
        )
        total = t.pop("total")
        assert sum(t.values()) == pytest.approx(total)

    def test_fp16_decode_memory_bound(self, model):
        t = simulate_attention_kernel(
            METHODS["fp16"], model.attention_geometry(4, 1, 8192), prefill=False
        )
        assert t["load_kv"] / t["total"] > 0.7

    def test_fp16_prefill_softmax_significant(self, model):
        """§4: softmax costs >30% of *compute* in stock flash prefill; we
        assert it is a significant share (>10%) of the non-overlapped
        simulator total."""
        t = simulate_attention_kernel(
            METHODS["fp16"], model.attention_geometry(4, 8192, 8192), prefill=True
        )
        assert t["softmax"] / t["total"] > 0.10

    def test_turbo_softmax_cheaper_than_fp16(self, model):
        g = model.attention_geometry(4, 8192, 8192)
        base = simulate_attention_kernel(METHODS["fp16"], g, prefill=True)
        turbo = simulate_attention_kernel(METHODS["turbo4"], g, prefill=True)
        assert turbo["softmax"] < base["softmax"]

    def test_kivi_has_dequant_phase(self, model):
        g = model.attention_geometry(4, 1, 8192)
        t = simulate_attention_kernel(METHODS["kivi4"], g, prefill=False)
        assert t["dequant"] > 0
        base = simulate_attention_kernel(METHODS["fp16"], g, prefill=False)
        assert base["dequant"] == 0.0

    def test_turbo_total_below_fp16_decode(self, model):
        g = model.attention_geometry(4, 1, 8192)
        base = simulate_attention_kernel(METHODS["fp16"], g, prefill=False)
        turbo = simulate_attention_kernel(METHODS["turbo_mixed"], g, prefill=False)
        assert turbo["total"] < base["total"]

    def test_kivi_total_above_fp16_decode(self, model):
        g = model.attention_geometry(4, 1, 8192)
        base = simulate_attention_kernel(METHODS["fp16"], g, prefill=False)
        kivi = simulate_attention_kernel(METHODS["kivi4"], g, prefill=False)
        assert kivi["total"] > base["total"]

"""Tests for the FP16 / KIVI / GEAR baseline backends."""

import numpy as np
import pytest

from repro.attention.masks import causal_mask
from repro.attention.reference import reference_attention
from repro.baselines import (
    FP16Attention,
    GEARAttention,
    GEARConfig,
    KIVIAttention,
    KIVIConfig,
)
from repro.baselines.base import gqa_expand
from repro.baselines.gear import low_rank_factors


@pytest.fixture
def small_qkv(rng):
    h, n, d = 2, 80, 16
    return tuple(rng.standard_normal((h, n, d)) for _ in range(3))


class TestGqaExpand:
    def test_identity(self, rng):
        x = rng.standard_normal((4, 8, 2))
        assert gqa_expand(x, 4) is x

    def test_repeat(self, rng):
        x = rng.standard_normal((2, 8, 2))
        out = gqa_expand(x, 6)
        assert out.shape == (6, 8, 2)
        np.testing.assert_array_equal(out[0], out[1])

    def test_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            gqa_expand(rng.standard_normal((3, 4, 2)), 4)


class TestFP16Attention:
    def test_prefill_exact(self, small_qkv):
        q, k, v = small_qkv
        n = q.shape[1]
        out, state = FP16Attention().prefill(q, k, v, causal=True)
        expected = reference_attention(q, k, v, mask=causal_mask(n, n))
        assert np.linalg.norm(out - expected) / np.linalg.norm(expected) < 5e-3
        assert state.seq_len == n

    def test_decode_appends(self, small_qkv, rng):
        q, k, v = small_qkv
        backend = FP16Attention()
        _, state = backend.prefill(q, k, v)
        out = backend.decode_step(
            rng.standard_normal((2, 16)), rng.standard_normal((2, 16)),
            rng.standard_normal((2, 16)), state,
        )
        assert out.shape == (2, 16)
        assert state.seq_len == 81

    def test_storage_is_16_bits(self, small_qkv):
        q, k, v = small_qkv
        _, state = FP16Attention().prefill(q, k, v)
        assert state.effective_bits_per_value() == 16.0
        assert state.compression_ratio() == 1.0


class TestKIVI:
    def test_prefill_exact_compute(self, small_qkv):
        """KIVI quantizes for storage; prefill compute is exact."""
        q, k, v = small_qkv
        n = q.shape[1]
        out, _ = KIVIAttention(KIVIConfig(group_size=32, residual=32)).prefill(
            q, k, v, causal=True
        )
        expected = reference_attention(q, k, v, mask=causal_mask(n, n))
        assert np.linalg.norm(out - expected) / np.linalg.norm(expected) < 5e-3

    def test_residual_window_recent_tokens_exact(self, small_qkv):
        q, k, v = small_qkv
        _, state = KIVIAttention(KIVIConfig(group_size=32, residual=32)).prefill(q, k, v)
        # 80 tokens, groups of 32: 64 quantized, 16 in the FP16 residual.
        assert state.k_resid.shape[1] == 16
        k_deq, _ = state.dequantized()
        np.testing.assert_allclose(k_deq[:, 64:, :], k[:, 64:, :], atol=2e-3)

    def test_quantized_part_lossy_but_bounded(self, small_qkv):
        q, k, v = small_qkv
        cfg = KIVIConfig(bits=4, group_size=32, residual=32)
        _, state = KIVIAttention(cfg).prefill(q, k, v)
        k_deq, v_deq = state.dequantized()
        rel = np.linalg.norm(k_deq[:, :64] - k[:, :64]) / np.linalg.norm(k[:, :64])
        assert 0.0 < rel < 0.12

    def test_decode_flushes_groups(self, small_qkv, rng):
        q, k, v = small_qkv
        backend = KIVIAttention(KIVIConfig(group_size=32, residual=32))
        _, state = backend.prefill(q, k, v)
        groups_before = len(state.k_groups)
        for _ in range(40):
            backend.decode_step(
                rng.standard_normal((2, 16)), rng.standard_normal((2, 16)),
                rng.standard_normal((2, 16)), state,
            )
        assert len(state.k_groups) > groups_before
        assert state.seq_len == 120

    def test_storage_between_bits_and_fp16(self, small_qkv):
        q, k, v = small_qkv
        _, state = KIVIAttention(KIVIConfig(bits=4, group_size=32, residual=32)).prefill(q, k, v)
        eff = state.effective_bits_per_value()
        assert 4.0 < eff < 16.0

    def test_bits_sweep_monotone_error(self, small_qkv):
        q, k, v = small_qkv
        errs = {}
        for bits in (2, 4, 8):
            cfg = KIVIConfig(bits=bits, group_size=32, residual=32)
            _, state = KIVIAttention(cfg).prefill(q, k, v)
            k_deq, _ = state.dequantized()
            errs[bits] = np.linalg.norm(k_deq - k)
        assert errs[8] <= errs[4] <= errs[2]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            KIVIConfig(bits=5)
        with pytest.raises(ValueError):
            KIVIConfig(group_size=0)


class TestGEAR:
    def test_low_rank_factors_shapes(self, rng):
        err = rng.standard_normal((3, 32, 16))
        a, b = low_rank_factors(err, rank=4)
        assert a.shape == (3, 32, 4) and b.shape == (3, 4, 16)

    def test_low_rank_is_best_approximation(self, rng):
        err = rng.standard_normal((1, 16, 8))
        a, b = low_rank_factors(err, rank=8)  # full rank -> near exact
        np.testing.assert_allclose(a @ b, err, atol=2e-2)  # fp16 factors

    def test_gear_beats_plain_quant(self, small_qkv):
        """Low-rank compensation must reduce reconstruction error vs KIVI
        at the same bit-width."""
        q, k, v = small_qkv
        kivi = KIVIAttention(KIVIConfig(bits=2, group_size=32, residual=32))
        gear = GEARAttention(GEARConfig(bits=2, group_size=32, residual=32, rank=4))
        _, ks = kivi.prefill(q, k, v)
        _, gs = gear.prefill(q, k, v)
        k_kivi, _ = ks.dequantized()
        k_gear, _ = gs.dequantized()
        assert np.linalg.norm(k_gear - k) < np.linalg.norm(k_kivi - k)

    def test_gear_storage_exceeds_kivi(self, small_qkv):
        q, k, v = small_qkv
        _, ks = KIVIAttention(KIVIConfig(bits=4, group_size=32, residual=32)).prefill(q, k, v)
        _, gs = GEARAttention(GEARConfig(bits=4, group_size=32, residual=32)).prefill(q, k, v)
        assert gs.storage_bits > ks.storage_bits

    def test_decode_runs(self, small_qkv, rng):
        q, k, v = small_qkv
        backend = GEARAttention(GEARConfig(group_size=32, residual=32))
        _, state = backend.prefill(q, k, v)
        out = backend.decode_step(
            rng.standard_normal((2, 16)), rng.standard_normal((2, 16)),
            rng.standard_normal((2, 16)), state,
        )
        assert out.shape == (2, 16)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            GEARConfig(rank=0)

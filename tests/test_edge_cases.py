"""Edge-case coverage across modules: empty states, NaN policies,
capacity edges, and parameter variants not exercised elsewhere."""

import numpy as np
import pytest

from repro.core import TurboAttention, TurboConfig
from repro.core.buffer import DecodeBuffer
from repro.core.kvcache import QuantizedKVCache
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry, linear_counts
from repro.serving.metrics import summarize
from repro.serving.request import Request, RequestRecord, RequestStatus
from repro.tasks.recall import RecallTask


class TestEmptyStates:
    def test_empty_cache_iteration(self):
        cache = QuantizedKVCache(2, 8, head_bits=np.array([4, 4]), block_size=16)
        assert list(cache.iter_decompressed()) == []

    def test_buffer_extend_respects_capacity(self, rng):
        buf = DecodeBuffer(
            1, 4, capacity=3,
            k_scale=np.ones((1, 1, 1)), v_scale=np.ones((1, 1, 1)),
        )
        with pytest.raises(RuntimeError):
            buf.extend(rng.standard_normal((1, 5, 4)), rng.standard_normal((1, 5, 4)))
        assert len(buf) == 3  # filled up to capacity before raising

    def test_metrics_with_no_finished_requests(self):
        rec = RequestRecord(Request(0, 0.0, 10, 5))
        m = summarize([rec], makespan=1.0)
        assert m.completed == 0
        assert m.throughput_tokens_per_s == 0.0
        assert np.isnan(m.mean_ttft)

    def test_metrics_zero_makespan(self):
        m = summarize([], makespan=0.0)
        assert m.throughput_tokens_per_s == 0.0


class TestDegenerateAttention:
    def test_single_token_prefill(self, rng):
        q, k, v = (rng.standard_normal((2, 1, 8)) for _ in range(3))
        turbo = TurboAttention(TurboConfig(block_q=16, block_k=16, buffer_size=16))
        out, state = turbo.prefill(q, k, v, causal=True)
        assert out.shape == (2, 1, 8)
        assert state.seq_len == 1
        # Single token with itself: softmax weight 1 -> output ~= value.
        rel = np.linalg.norm(out[:, 0] - v[:, 0]) / np.linalg.norm(v)
        assert rel < 0.1

    def test_constant_inputs_no_nans(self):
        q = np.ones((2, 32, 8))
        k = np.ones((2, 32, 8))
        v = np.ones((2, 32, 8))
        turbo = TurboAttention(TurboConfig(block_q=16, block_k=16, buffer_size=16))
        out, _ = turbo.prefill(q, k, v, causal=True)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, 1.0, atol=0.05)

    def test_tiny_head_dim(self, rng):
        q, k, v = (rng.standard_normal((1, 40, 2)) for _ in range(3))
        turbo = TurboAttention(TurboConfig(block_q=16, block_k=16, buffer_size=16))
        out, _ = turbo.prefill(q, k, v, causal=True)
        assert np.all(np.isfinite(out))

    def test_zero_variance_head(self, rng):
        """One head entirely zero must not poison scales or output."""
        q, k, v = (rng.standard_normal((2, 32, 8)) for _ in range(3))
        k[1] = 0.0
        v[1] = 0.0
        turbo = TurboAttention(TurboConfig(block_q=16, block_k=16, buffer_size=16))
        out, state = turbo.prefill(q, k, v, causal=True)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[1], 0.0, atol=1e-9)


class TestModelGeometryVariants:
    def test_quantized_weight_bits(self):
        m16 = ModelGeometry.phi3_medium()
        m4 = ModelGeometry(
            n_layers=m16.n_layers, n_heads=m16.n_heads, n_kv_heads=m16.n_kv_heads,
            head_dim=m16.head_dim, d_ff=m16.d_ff, vocab_size=m16.vocab_size,
            weight_bits=4.0,
        )
        assert m4.weight_bytes == pytest.approx(m16.weight_bytes / 4)
        # Decode weight reads shrink proportionally.
        c16 = linear_counts(m16, 1, 1)
        c4 = linear_counts(m4, 1, 1)
        assert c4.bytes_read < c16.bytes_read

    def test_linear_counts_kernel_launches(self):
        m = ModelGeometry.phi3_medium()
        assert linear_counts(m, 1, 1).kernel_launches == 6 * m.n_layers + 1


class TestTaskEdges:
    def test_pairs_equal_prefill_len(self):
        # Degenerate but legal: every prompt position is a pair.
        t = RecallTask(name="dense", prefill_len=32, n_pairs=32, n_hops=4)
        assert t.n_pairs == 32

    def test_request_status_enum_complete(self):
        assert {s.value for s in RequestStatus} == {
            "waiting", "prefilling", "running", "finished", "failed",
            "rejected", "shed", "migrating",
        }


class TestMethodSpecs:
    def test_all_methods_have_positive_bits(self):
        for spec in METHODS.values():
            assert spec.kv_bits > 0
            assert spec.cache_workspace_factor >= 1.0

    def test_turbo_methods_compress(self):
        for name, spec in METHODS.items():
            if name.startswith("turbo"):
                assert spec.kv_bits < 8

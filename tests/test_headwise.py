"""Tests for head-wise mixed precision selection (Eq. 11/12)."""

import numpy as np
import pytest

from repro.core.headwise import (
    HeadSelectionMethod,
    assign_head_bits,
    channel_gaps,
    head_entropy,
    head_minmax,
    head_priority,
    head_scores,
    head_variation,
    select_two_bit_heads,
)


@pytest.fixture
def structured_heads(rng):
    """8 heads with increasing outlier severity: head h has h channels
    scaled by 8x, so priority should rank them in order."""
    x = rng.standard_normal((8, 128, 16))
    for h in range(8):
        x[h, :, :h] *= 8.0
    return x


class TestMetrics:
    def test_channel_gaps_shape(self, rng):
        x = rng.standard_normal((4, 64, 16))
        assert channel_gaps(x).shape == (4, 16)

    def test_priority_ranks_structured_heads(self, structured_heads):
        p = head_priority(structured_heads)
        # Head 0 (no outliers) has the lowest priority; severity rises.
        assert np.argmin(p) == 0
        assert p[7] > p[1]

    def test_priority_is_gap_times_std(self, rng):
        x = rng.standard_normal((3, 32, 8))
        p = head_priority(x)
        gap = x.max(axis=(1, 2)) - x.min(axis=(1, 2))
        std = channel_gaps(x).std(axis=-1)
        np.testing.assert_allclose(p, gap * std)

    def test_minmax_definition(self, rng):
        x = rng.standard_normal((3, 32, 8))
        np.testing.assert_allclose(head_minmax(x), x.max(axis=(1, 2)) - x.min(axis=(1, 2)))

    def test_variation_definition(self, rng):
        x = rng.standard_normal((3, 32, 8))
        np.testing.assert_allclose(head_variation(x), channel_gaps(x).std(axis=-1))

    def test_entropy_lower_for_outlier_heads(self, rng):
        flat = rng.standard_normal((1, 512, 16))
        spiky = flat.copy()
        spiky[0, :, 0] *= 50.0
        both = np.concatenate([flat, spiky], axis=0)
        e = head_entropy(both)
        assert e[1] < e[0]  # concentrated histogram

    def test_head_scores_dispatch(self, structured_heads):
        for m in ("priority", "entropy", "minmax", "variation"):
            s = head_scores(structured_heads, HeadSelectionMethod(m))
            assert s.shape == (8,)

    def test_head_scores_random_raises(self, structured_heads):
        with pytest.raises(ValueError):
            head_scores(structured_heads, HeadSelectionMethod.RANDOM)


class TestSelection:
    def test_count_exact(self, structured_heads):
        for n in range(9):
            mask = select_two_bit_heads(structured_heads, structured_heads, n)
            assert mask.sum() == n

    def test_priority_selects_calmest_heads(self, structured_heads):
        mask = select_two_bit_heads(structured_heads, structured_heads, 3)
        # Heads 0-2 have the weakest outliers and should be chosen.
        assert set(np.flatnonzero(mask)) == {0, 1, 2}

    def test_random_reproducible(self, structured_heads):
        a = select_two_bit_heads(
            structured_heads, structured_heads, 4, method="random",
            rng=np.random.default_rng(3),
        )
        b = select_two_bit_heads(
            structured_heads, structured_heads, 4, method="random",
            rng=np.random.default_rng(3),
        )
        np.testing.assert_array_equal(a, b)

    def test_out_of_range_raises(self, structured_heads):
        with pytest.raises(ValueError):
            select_two_bit_heads(structured_heads, structured_heads, 9)

    def test_zero_selection(self, structured_heads):
        mask = select_two_bit_heads(structured_heads, structured_heads, 0)
        assert not mask.any()


class TestAssignBits:
    def test_mapping(self):
        bits = assign_head_bits(np.array([True, False, True]))
        np.testing.assert_array_equal(bits, [2, 4, 2])

    def test_high_bits_override(self):
        bits = assign_head_bits(np.array([False, True]), high_bits=8)
        np.testing.assert_array_equal(bits, [8, 2])


class TestSelectionQuality:
    def test_priority_no_worse_than_random_on_error(self, structured_heads):
        """Compressing priority-selected heads to 2-bit yields lower
        reconstruction error than a random choice (averaged over draws)."""
        from repro.quant.progressive import pq_compress, pq_dequantize
        from repro.quant.schemes import quantize_symmetric

        x = structured_heads

        def error(mask):
            bits = assign_head_bits(mask).reshape(-1, 1, 1)
            codes, scale = quantize_symmetric(x, bits=8, axis=(-2, -1), max_code=119)
            block = pq_compress(codes, bits=bits, float_scale=scale)
            return np.linalg.norm(x - pq_dequantize(block))

        pri = error(select_two_bit_heads(x, x, 4))
        rand_errors = [
            error(
                select_two_bit_heads(
                    x, x, 4, method="random", rng=np.random.default_rng(i)
                )
            )
            for i in range(8)
        ]
        assert pri <= np.mean(rand_errors)

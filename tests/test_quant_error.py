"""Tests for the error metrics."""

import numpy as np
import pytest

from repro.quant.error import (
    max_abs_error,
    mse,
    quantization_error_report,
    relative_frobenius_error,
)


class TestMetrics:
    def test_zero_for_identical(self, rng):
        x = rng.standard_normal((8, 8))
        assert mse(x, x) == 0.0
        assert max_abs_error(x, x) == 0.0
        assert relative_frobenius_error(x, x) == 0.0

    def test_mse_known_value(self):
        x = np.zeros(4)
        y = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(x, y) == 1.0

    def test_max_abs_known_value(self):
        assert max_abs_error(np.zeros(3), np.array([0.5, -2.0, 1.0])) == 2.0

    def test_relative_frobenius_scale_invariant(self, rng):
        x = rng.standard_normal((8, 8))
        y = x + rng.standard_normal((8, 8)) * 0.1
        assert relative_frobenius_error(x, y) == pytest.approx(
            relative_frobenius_error(10 * x, 10 * y)
        )

    def test_relative_frobenius_zero_reference(self):
        assert relative_frobenius_error(np.zeros(4), np.zeros(4)) == 0.0

    def test_report_bundles_all(self, rng):
        x = rng.standard_normal(16)
        y = x + 0.01
        r = quantization_error_report(x, y)
        assert r.mse == pytest.approx(1e-4)
        assert r.max_abs == pytest.approx(0.01)
        assert set(r.as_dict()) == {"mse", "max_abs", "rel_frobenius"}

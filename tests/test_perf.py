"""Tests for the performance model: counts, GPU spec, attention costs."""

import numpy as np
import pytest

from repro.perf.attention_costs import (
    METHODS,
    AttentionGeometry,
    MethodSpec,
    attention_counts,
    attention_latency,
)
from repro.perf.counts import OpCounts
from repro.perf.gpu import A100_80GB, GPUSpec


class TestOpCounts:
    def test_addition(self):
        a = OpCounts(fp16_tc=1, bytes_read=10)
        b = OpCounts(fp16_tc=2, fp32_cuda=5)
        c = a + b
        assert c.fp16_tc == 3 and c.fp32_cuda == 5 and c.bytes_read == 10

    def test_scaling(self):
        c = OpCounts(int8_tc=4, bytes_written=2) * 10
        assert c.int8_tc == 40 and c.bytes_written == 20

    def test_rmul(self):
        c = 3 * OpCounts(fp16_tc=1)
        assert c.fp16_tc == 3

    def test_totals(self):
        c = OpCounts(fp16_tc=1, int8_tc=2, fp32_cuda=3, bytes_read=4, bytes_written=5)
        assert c.total_ops == 6 and c.total_bytes == 9


class TestGPUSpec:
    def test_a100_rates(self):
        assert A100_80GB.fp16_tensor_tflops == 312.0
        assert A100_80GB.int8_tensor_tops == 624.0
        assert A100_80GB.hbm_capacity_gb == 80.0

    def test_fp32_is_tiny_fraction_of_fp16_tc(self):
        """The paper's ~3% claim (§2.4)."""
        ratio = A100_80GB.fp32_cuda_tflops / A100_80GB.fp16_tensor_tflops
        assert 0.02 < ratio < 0.10

    def test_latency_roofline(self):
        gpu = GPUSpec(
            name="toy", fp16_tensor_tflops=1.0, int8_tensor_tops=2.0,
            fp32_cuda_tflops=0.1, fp16_cuda_tflops=0.4, int_alu_tops=0.1,
            hbm_bandwidth_gbps=1.0, hbm_capacity_gb=1.0,
            mma_efficiency=1.0, int8_mma_efficiency=1.0,
            cuda_efficiency=1.0, mem_efficiency=1.0, kernel_overhead_us=0.0,
        )
        compute_bound = OpCounts(fp16_tc=1e12)  # 1 s compute, no memory
        assert gpu.latency(compute_bound) == pytest.approx(1.0)
        memory_bound = OpCounts(bytes_read=2e9)  # 2 s memory
        assert gpu.latency(memory_bound) == pytest.approx(2.0)
        both = compute_bound + memory_bound
        assert gpu.latency(both) == pytest.approx(2.0)  # max, not sum

    def test_overhead_added(self):
        c = OpCounts(kernel_launches=2)
        assert A100_80GB.latency(c) == pytest.approx(2 * 5e-6)


class TestAttentionGeometry:
    def test_causal_prefill_half_scores(self):
        g = AttentionGeometry(1, 8, 8, 64, 1024, 1024, causal=True)
        full = 8 * 1024 * 1024
        assert g.score_elements == pytest.approx(full * (1024 + 1) / 2048)

    def test_decode_sees_everything(self):
        g = AttentionGeometry(2, 8, 8, 64, 1, 4096, causal=True)
        assert g.score_elements == 2 * 8 * 4096

    def test_kv_elements_count_both(self):
        g = AttentionGeometry(1, 8, 2, 64, 1, 100)
        assert g.kv_elements == 2 * 2 * 100 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            AttentionGeometry(1, 6, 4, 64, 1, 1)
        with pytest.raises(ValueError):
            AttentionGeometry(0, 4, 4, 64, 1, 1)


class TestMethodCosts:
    @pytest.fixture
    def geom_prefill(self):
        return AttentionGeometry(4, 40, 10, 128, 8192, 8192)

    @pytest.fixture
    def geom_decode(self):
        return AttentionGeometry(4, 40, 10, 128, 1, 8192)

    def test_turbo_prefill_faster_than_fp16(self, geom_prefill):
        base = attention_latency(METHODS["fp16"], geom_prefill, True)
        turbo = attention_latency(METHODS["turbo4"], geom_prefill, True)
        assert 1.2 < base / turbo < 2.0  # paper: up to 1.8x

    def test_turbo_decode_faster_than_fp16(self, geom_decode):
        base = attention_latency(METHODS["fp16"], geom_decode, False)
        turbo = attention_latency(METHODS["turbo4"], geom_decode, False)
        assert 1.2 < base / turbo < 2.5  # paper: up to 1.7x

    def test_kivi_decode_slower_than_fp16(self, geom_decode):
        """Figure 6: the dequantization pipeline costs more than it saves."""
        base = attention_latency(METHODS["fp16"], geom_decode, False)
        kivi = attention_latency(METHODS["kivi4"], geom_decode, False)
        assert kivi > base

    def test_gear_decode_slower_than_kivi(self, geom_decode):
        kivi = attention_latency(METHODS["kivi4"], geom_decode, False)
        gear = attention_latency(METHODS["gear4"], geom_decode, False)
        assert gear > kivi  # low-rank reconstruction adds work

    def test_kivi_prefill_matches_fp16_plus_pack(self, geom_prefill):
        base = attention_latency(METHODS["fp16"], geom_prefill, True)
        kivi = attention_latency(METHODS["kivi4"], geom_prefill, True)
        assert base * 0.95 < kivi < base * 1.3

    def test_latency_monotone_in_context(self):
        for name in ("fp16", "turbo4", "kivi4"):
            lats = [
                attention_latency(
                    METHODS[name], AttentionGeometry(4, 40, 10, 128, 1, ctx), False
                )
                for ctx in (1024, 4096, 16384)
            ]
            assert lats[0] < lats[1] < lats[2]

    def test_latency_monotone_in_batch(self):
        lats = [
            attention_latency(
                METHODS["fp16"], AttentionGeometry(b, 40, 10, 128, 1, 4096), False
            )
            for b in (1, 8, 64)
        ]
        assert lats[0] < lats[1] < lats[2]

    def test_fewer_bits_fewer_decode_bytes(self):
        g = AttentionGeometry(4, 40, 10, 128, 1, 8192)
        c4 = attention_counts(METHODS["turbo4"], g, False)
        c2 = attention_counts(METHODS["turbo2"], g, False)
        assert c2.bytes_read < c4.bytes_read

    def test_turbo_uses_int8_not_fp16_matmuls(self):
        g = AttentionGeometry(1, 8, 8, 64, 256, 256)
        c = attention_counts(METHODS["turbo4"], g, True)
        base = attention_counts(METHODS["fp16"], g, True)
        assert c.int8_tc == base.fp16_tc  # same MatMul volume, different unit
        assert c.fp16_tc < base.fp16_tc  # only the SAS polynomial

    def test_unknown_kind_raises(self):
        g = AttentionGeometry(1, 1, 1, 8, 1, 8)
        with pytest.raises(ValueError):
            attention_counts(MethodSpec(name="x", kind="bogus"), g, True)

    def test_with_bits(self):
        spec = METHODS["turbo4"].with_bits(2.5)
        assert spec.kv_bits == 2.5 and spec.kind == "turbo"


class TestH100:
    def test_spec_present(self):
        from repro.perf.gpu import H100_80GB

        assert H100_80GB.fp16_tensor_tflops > 2 * A100_80GB.fp16_tensor_tflops
        assert H100_80GB.hbm_bandwidth_gbps > A100_80GB.hbm_bandwidth_gbps

    def test_turbo_advantage_persists_on_hopper(self):
        """The INT8/bandwidth arguments are device-portable: turbo still
        wins prefill and decode on an H100 spec."""
        from repro.perf.gpu import H100_80GB

        prefill = AttentionGeometry(4, 40, 10, 128, 8192, 8192)
        decode = AttentionGeometry(4, 40, 10, 128, 1, 8192)
        for geom, is_prefill in ((prefill, True), (decode, False)):
            base = attention_latency(METHODS["fp16"], geom, is_prefill, gpu=H100_80GB)
            turbo = attention_latency(METHODS["turbo4"], geom, is_prefill, gpu=H100_80GB)
            assert base / turbo > 1.15

    def test_h100_faster_than_a100(self):
        geom = AttentionGeometry(4, 40, 10, 128, 8192, 8192)
        from repro.perf.gpu import H100_80GB

        a = attention_latency(METHODS["fp16"], geom, True, gpu=A100_80GB)
        h = attention_latency(METHODS["fp16"], geom, True, gpu=H100_80GB)
        assert h < a

"""Tests for the low-precision float emulation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fp.formats import BF16, FP16, FP32, fp16_matmul, quantize_to_format


class TestQuantizeToFormat:
    def test_fp16_idempotent(self, rng):
        x = rng.standard_normal(100)
        once = quantize_to_format(x, FP16)
        twice = quantize_to_format(once, FP16)
        np.testing.assert_array_equal(once, twice)

    def test_bf16_idempotent(self, rng):
        x = rng.standard_normal(100)
        once = quantize_to_format(x, BF16)
        twice = quantize_to_format(once, BF16)
        np.testing.assert_array_equal(once, twice)

    def test_fp16_relative_error_bound(self, rng):
        x = rng.standard_normal(1000)
        err = np.abs(quantize_to_format(x, FP16) - x)
        # Round-to-nearest: relative error <= 2^-11.
        assert np.all(err <= np.abs(x) * 2.0**-11 + 1e-12)

    def test_bf16_relative_error_bound(self, rng):
        x = rng.standard_normal(1000)
        err = np.abs(quantize_to_format(x, BF16) - x)
        assert np.all(err <= np.abs(x) * 2.0**-8 + 1e-12)

    def test_bf16_coarser_than_fp16(self, rng):
        x = rng.standard_normal(4096) * 0.7
        e16 = np.abs(quantize_to_format(x, FP16) - x).mean()
        e_bf = np.abs(quantize_to_format(x, BF16) - x).mean()
        assert e_bf > e16

    def test_fp32_near_exact(self, rng):
        x = rng.standard_normal(100)
        err = np.abs(quantize_to_format(x, FP32) - x)
        assert np.all(err <= np.abs(x) * 2.0**-24 + 1e-30)

    def test_exact_values_preserved(self):
        # Powers of two and small integers are exact in all formats.
        x = np.array([0.0, 1.0, -2.0, 0.5, 4.0, -0.25])
        for fmt in (FP16, BF16, FP32):
            np.testing.assert_array_equal(quantize_to_format(x, fmt), x)

    def test_unknown_format_raises(self):
        from repro.fp.formats import FloatFormat

        bogus = FloatFormat(name="fp8", exponent_bits=4, mantissa_bits=3, bytes=1)
        with pytest.raises(ValueError):
            quantize_to_format(np.zeros(3), bogus)

    @given(st.floats(min_value=-60000, max_value=60000, allow_nan=False))
    def test_fp16_matches_numpy_cast(self, value):
        out = quantize_to_format(np.array([value]), FP16)[0]
        assert out == float(np.float16(value))


class TestFp16Matmul:
    def test_matches_float_for_exact_inputs(self, rng):
        # Small integers are exactly representable: the only difference
        # from float64 matmul is fp32 accumulation, negligible here.
        a = rng.integers(-8, 8, size=(16, 32)).astype(np.float64)
        b = rng.integers(-8, 8, size=(32, 8)).astype(np.float64)
        np.testing.assert_allclose(fp16_matmul(a, b), a @ b, rtol=1e-6)

    def test_rounds_inputs(self):
        # 1 + 2^-12 is not representable in fp16; it rounds to 1.
        a = np.array([[1.0 + 2.0**-12]])
        b = np.array([[1.0]])
        assert fp16_matmul(a, b)[0, 0] == 1.0

    def test_batched_shapes(self, rng):
        a = rng.standard_normal((3, 5, 8, 16))
        b = rng.standard_normal((3, 5, 16, 4))
        out = fp16_matmul(a, b)
        assert out.shape == (3, 5, 8, 4)
        np.testing.assert_allclose(out, a @ b, atol=0.05)

    def test_format_metadata(self):
        assert FP16.bytes == 2 and BF16.bytes == 2 and FP32.bytes == 4
        assert FP16.eps == 2.0**-10
        assert BF16.eps == 2.0**-7

"""Tests for repro.migrate: wire-cost model and checksummed handoff payloads."""

import numpy as np
import pytest

from repro.migrate import (
    HandoffOutcome,
    MigrationConfig,
    build_payload,
    corrupt_payload,
    kv_wire_bytes,
    migration_transfer_time,
    receive_payload,
)
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.perf.gpu import A100_80GB, H100_80GB


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


class TestWireBytes:
    def test_zero_tokens_is_zero_bytes(self, model):
        assert kv_wire_bytes(model, 0, 16.0) == 0.0
        assert kv_wire_bytes(model, -3, 16.0) == 0.0

    def test_monotone_in_tokens(self, model):
        sizes = [kv_wire_bytes(model, t, 16.0) for t in (1, 10, 100, 1000, 10000)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
        # And exactly linear: doubling tokens doubles bytes.
        assert kv_wire_bytes(model, 2000, 16.0) == pytest.approx(
            2 * kv_wire_bytes(model, 1000, 16.0)
        )

    def test_fp16_closed_form(self, model):
        # 2 (K and V) * kv heads * head_dim * layers * 2 bytes per token.
        expected = 2 * model.n_kv_heads * model.head_dim * model.n_layers * 2.0
        assert kv_wire_bytes(model, 1, 16.0) == pytest.approx(expected)

    def test_width_scaling_matches_allocator_bytes_scale(self, model):
        """The wire discount for a compressed cache must equal the engine
        allocator's ``bytes_scale``: both are ``kv_bits / 16``."""
        fp16 = kv_wire_bytes(model, 1234, 16.0)
        for name in ("turbo4", "turbo_mixed", "turbo2", "kivi4"):
            bits = METHODS[name].kv_bits
            assert kv_wire_bytes(model, 1234, bits) / fp16 == pytest.approx(
                bits / 16.0
            )

    def test_rejects_nonpositive_bits(self, model):
        with pytest.raises(ValueError):
            kv_wire_bytes(model, 10, 0.0)


class TestTransferTime:
    def test_zero_bytes_zero_latency_floor(self, model):
        # Zero tokens means nothing crosses the link: not even the
        # latency constant is paid.
        assert migration_transfer_time(A100_80GB, model, 0, 16.0) == 0.0

    def test_monotone_in_tokens(self, model):
        times = [
            migration_transfer_time(A100_80GB, model, t, 16.0)
            for t in (100, 1000, 10000)
        ]
        assert times[0] < times[1] < times[2]

    def test_compressed_cache_migrates_proportionally_cheaper(self, model):
        """Above the latency floor, 4.3-bit transfers approach the
        4.3/16 byte ratio; they can never be *more* expensive."""
        fp16 = migration_transfer_time(A100_80GB, model, 100_000, 16.0)
        turbo = migration_transfer_time(
            A100_80GB, model, 100_000, METHODS["turbo4"].kv_bits
        )
        ratio = turbo / fp16
        assert METHODS["turbo4"].kv_bits / 16.0 < ratio < 0.30

    def test_faster_link_is_faster(self, model):
        a = migration_transfer_time(A100_80GB, model, 50_000, 16.0)
        h = migration_transfer_time(H100_80GB, model, 50_000, 16.0)
        assert h < a

    def test_slowdown_multiplies(self, model):
        base = migration_transfer_time(A100_80GB, model, 50_000, 16.0)
        assert migration_transfer_time(
            A100_80GB, model, 50_000, 16.0, slowdown=4.0
        ) == pytest.approx(4.0 * base)
        with pytest.raises(ValueError):
            migration_transfer_time(A100_80GB, model, 50_000, 16.0, slowdown=0.5)


class TestHandoffPayload:
    CFG = MigrationConfig()

    def test_intact_roundtrip(self):
        arrays = build_payload(7, 0, 42, 4.3, self.CFG)
        outcome = receive_payload(arrays, 1000, self.CFG)
        assert outcome == HandoffOutcome(1000, (1000, 1000), False)
        assert outcome.intact
        assert outcome.recompute_tokens == 0

    def test_corruption_detected_and_salvaged(self):
        arrays = build_payload(7, 0, 42, 4.3, self.CFG)
        bad = corrupt_payload(arrays, 7, 0, 42, self.CFG)
        outcome = receive_payload(bad, 1000, self.CFG)
        assert not outcome.intact
        assert outcome.salvaged
        # The corruptor spares block 0, so the salvaged prefix is never
        # empty and the recompute range is strictly smaller than a full
        # re-prefill.
        assert 0 < outcome.valid_tokens < 1000
        assert outcome.recompute_range == (outcome.valid_tokens, 1000)
        assert 0 < outcome.recompute_tokens < 1000

    def test_corruption_without_salvage_recomputes_everything(self):
        cfg = MigrationConfig(salvage=False)
        arrays = build_payload(7, 0, 42, 4.3, cfg)
        bad = corrupt_payload(arrays, 7, 0, 42, cfg)
        outcome = receive_payload(bad, 1000, cfg)
        assert outcome == HandoffOutcome(0, (0, 1000), False)
        assert outcome.recompute_tokens == 1000

    def test_corrupt_does_not_mutate_input(self):
        arrays = build_payload(3, 1, 42, 16.0, self.CFG)
        before = {k: v.copy() for k, v in arrays.items()}
        corrupt_payload(arrays, 3, 1, 42, self.CFG)
        for key, val in before.items():
            assert np.array_equal(arrays[key], val), key

    def test_deterministic_in_all_keys(self):
        a = build_payload(9, 2, 17, 2.3, self.CFG)
        b = build_payload(9, 2, 17, 2.3, self.CFG)
        assert sorted(a) == sorted(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key
        ca = corrupt_payload(a, 9, 2, 17, self.CFG)
        cb = corrupt_payload(b, 9, 2, 17, self.CFG)
        for key in ca:
            assert np.array_equal(ca[key], cb[key]), key
        # A different attempt produces a different payload stream.
        other = build_payload(9, 3, 17, 2.3, self.CFG)
        assert any(
            not np.array_equal(a[k], other[k]) for k in a if "codes" in k
        )

    def test_salvage_fraction_scales_with_prompt(self):
        arrays = build_payload(5, 0, 42, 4.3, self.CFG)
        bad = corrupt_payload(arrays, 5, 0, 42, self.CFG)
        small = receive_payload(bad, 128, self.CFG)
        large = receive_payload(bad, 4096, self.CFG)
        # Same salvaged block fraction mapped onto different prompts.
        assert small.valid_tokens * 4096 == pytest.approx(
            large.valid_tokens * 128, rel=0.1
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MigrationConfig(payload_blocks=1)
        with pytest.raises(ValueError):
            MigrationConfig(defer_retry_s=0.0)

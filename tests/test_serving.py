"""Tests for the continuous-batching serving simulator."""

import numpy as np
import pytest

from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import (
    EngineConfig,
    PagedKVAllocator,
    Request,
    ServingEngine,
    poisson_workload,
)
from repro.serving.request import RequestRecord, RequestStatus
from repro.serving.workload import closed_batch_workload


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=0.0, prompt_len=0, gen_len=5)

    def test_record_lifecycle(self):
        rec = RequestRecord(Request(0, 0.0, 100, 10))
        assert rec.status is RequestStatus.WAITING
        rec.generated = 4
        assert rec.context_len == 104 and not rec.done
        rec.generated = 10
        assert rec.done

    def test_ttft_tpot(self):
        rec = RequestRecord(Request(0, 1.0, 100, 11))
        rec.first_token_at = 3.0
        rec.finished_at = 8.0
        assert rec.ttft == 2.0
        assert rec.tpot == pytest.approx(0.5)

    def test_requeue_resets(self):
        rec = RequestRecord(Request(0, 0.0, 100, 10))
        rec.status = RequestStatus.RUNNING
        rec.generated = 5
        rec.reset_for_requeue()
        assert rec.status is RequestStatus.WAITING
        assert rec.generated == 0 and rec.preemptions == 1


class TestAllocator:
    def _alloc(self, model, budget_gb=10.0, **kw):
        return PagedKVAllocator(
            model, METHODS["fp16"], budget_bytes=budget_gb * 1e9, **kw
        )

    def test_blocks_for(self, model):
        a = self._alloc(model, block_tokens=64)
        assert a.blocks_for(1) == 1
        assert a.blocks_for(64) == 1
        assert a.blocks_for(65) == 2

    def test_grow_and_release(self, model):
        a = self._alloc(model)
        assert a.grow(1, 100)
        used = a.used_blocks
        assert used == a.blocks_for(100)
        assert a.grow(1, 120)  # same allocation grows
        a.release(1)
        assert a.used_blocks == 0

    def test_oom_returns_false(self, model):
        a = PagedKVAllocator(model, METHODS["fp16"], budget_bytes=1e7)
        assert not a.grow(1, 10_000_000)

    def test_compressed_method_fits_more(self, model):
        budget = 10e9
        fp16 = PagedKVAllocator(model, METHODS["fp16"], budget)
        turbo = PagedKVAllocator(model, METHODS["turbo_mixed"], budget)
        assert turbo.total_blocks > 3 * fp16.total_blocks

    def test_fragmentation_accounting(self, model):
        a = self._alloc(model, block_tokens=64)
        a.grow(1, 65)  # 2 blocks, 63 slots wasted
        assert a.internal_fragmentation == pytest.approx(63 / 128)

    def test_ideal_vs_paper_harness(self, model):
        ideal = PagedKVAllocator(model, METHODS["fp16"], 10e9, paper_harness=False)
        paper = PagedKVAllocator(model, METHODS["fp16"], 10e9, paper_harness=True)
        assert ideal.total_blocks > paper.total_blocks

    def test_invalid_budget(self, model):
        with pytest.raises(ValueError):
            PagedKVAllocator(model, METHODS["fp16"], budget_bytes=0)


class TestWorkloads:
    def test_poisson_sorted_arrivals(self):
        reqs = poisson_workload(50, arrival_rate=3.0)
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
        assert all(r.prompt_len >= 512 for r in reqs)

    def test_poisson_reproducible(self):
        a = poisson_workload(10, 2.0, rng=np.random.default_rng(5))
        b = poisson_workload(10, 2.0, rng=np.random.default_rng(5))
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_closed_batch(self):
        reqs = closed_batch_workload(8, prompt_len=100, gen_len=10)
        assert len(reqs) == 8
        assert all(r.arrival_time == 0.0 for r in reqs)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_workload(0, 1.0)
        with pytest.raises(ValueError):
            poisson_workload(5, 0.0)


class TestEngine:
    def test_all_requests_complete(self, model):
        reqs = poisson_workload(20, arrival_rate=2.0, rng=np.random.default_rng(0))
        metrics = ServingEngine(model, METHODS["turbo_mixed"]).run(reqs)
        assert metrics.completed == 20
        assert metrics.output_tokens == sum(r.gen_len for r in reqs)
        assert metrics.throughput_tokens_per_s > 0

    def test_ttft_positive_and_ordered(self, model):
        reqs = poisson_workload(20, arrival_rate=2.0, rng=np.random.default_rng(0))
        metrics = ServingEngine(model, METHODS["turbo_mixed"]).run(reqs)
        assert 0 < metrics.mean_ttft <= metrics.p95_ttft

    def test_fp16_preempts_under_pressure(self, model):
        """The calibrated FP16 footprint forces queueing/preemption at
        loads the compressed cache absorbs."""
        reqs = poisson_workload(40, arrival_rate=6.0, rng=np.random.default_rng(3))
        fp16 = ServingEngine(model, METHODS["fp16"]).run(reqs)
        turbo = ServingEngine(model, METHODS["turbo_mixed"]).run(reqs)
        assert fp16.completed == turbo.completed == 40
        assert turbo.throughput_tokens_per_s > 1.3 * fp16.throughput_tokens_per_s
        assert turbo.p95_ttft < fp16.p95_ttft
        assert turbo.preemptions <= fp16.preemptions

    def test_closed_batch_matches_fig7a_direction(self, model):
        reqs = closed_batch_workload(96)
        fp16 = ServingEngine(model, METHODS["fp16"]).run(reqs)
        turbo = ServingEngine(model, METHODS["turbo_mixed"]).run(reqs)
        ratio = turbo.throughput_tokens_per_s / fp16.throughput_tokens_per_s
        assert 1.4 < ratio < 3.0

    def test_max_batch_respected(self, model):
        cfg = EngineConfig(max_batch=2)
        reqs = closed_batch_workload(6, prompt_len=128, gen_len=8)
        metrics = ServingEngine(model, METHODS["turbo_mixed"], cfg).run(reqs)
        assert metrics.completed == 6
        # With batch <= 2 the makespan is at least 3 sequential waves.
        assert metrics.makespan > 0

    def test_empty_idle_gap_jumps_clock(self, model):
        reqs = [
            Request(0, arrival_time=0.0, prompt_len=64, gen_len=2),
            Request(1, arrival_time=100.0, prompt_len=64, gen_len=2),
        ]
        metrics = ServingEngine(model, METHODS["turbo_mixed"]).run(reqs)
        assert metrics.completed == 2
        assert metrics.makespan > 100.0

    def test_deterministic(self, model):
        reqs = poisson_workload(15, arrival_rate=3.0, rng=np.random.default_rng(9))
        a = ServingEngine(model, METHODS["kivi4"]).run(reqs)
        b = ServingEngine(model, METHODS["kivi4"]).run(reqs)
        assert a.as_dict() == b.as_dict()


class TestCancelEvictAccounting:
    """cancel/evict_unfinished charge processed tokens to the engine's
    cancelled-waste counters for every live state — MIGRATING included."""

    def _migrating_engine(self, model):
        engine = ServingEngine(
            model, METHODS["turbo_mixed"], EngineConfig(prefill_only=True)
        )
        engine.submit(Request(0, 0.0, 512, 32))
        while not engine.migrating:
            engine.step()
        return engine

    def test_cancel_charges_migrating_prefill(self, model):
        engine = self._migrating_engine(model)
        rec = engine.records[0]
        assert rec.status is RequestStatus.MIGRATING and rec.prefilled == 512
        assert engine.cancel(0) is rec
        assert engine.cancelled_wasted_prefill_tokens == 512
        assert not engine.migrating and not engine.records

    def test_evict_charges_migrating_prefill(self, model):
        engine = self._migrating_engine(model)
        evicted = engine.evict_unfinished()
        assert [rec.request.request_id for rec in evicted] == [0]
        assert engine.cancelled_wasted_prefill_tokens == 512
        assert not engine.migrating and not engine.records

    def test_evict_charges_running_and_queued(self, model):
        engine = ServingEngine(model, METHODS["turbo_mixed"], EngineConfig())
        engine.submit(Request(0, 0.0, 512, 32))
        engine.submit(Request(1, 0.0, 512, 32))
        while engine.records[0].generated < 3:
            engine.step()
        processed = sum(
            rec.prefilled + rec.generated for rec in engine.records.values()
        )
        engine.evict_unfinished()
        assert (
            engine.cancelled_wasted_prefill_tokens
            + engine.cancelled_wasted_decode_tokens
            == processed
        )


class TestPreemption:
    """OOM-driven preemption: victim selection, requeue-at-front, and
    self-preemption when no other victim exists.

    Uses a tiny geometry so the block arithmetic is exact: 16 bytes/token
    at FP16 (ideal accounting), 4-token blocks = 64 bytes/block.
    """

    @pytest.fixture()
    def tiny(self):
        return ModelGeometry(
            n_layers=1, n_heads=1, n_kv_heads=1, head_dim=4,
            d_ff=16, vocab_size=32,
        )

    def _config(self, blocks, **kw):
        return EngineConfig(
            kv_budget_bytes=blocks * 64.0,
            block_tokens=4,
            paper_harness_memory=False,
            **kw,
        )

    def test_victim_is_most_recent_admission(self, tiny):
        """When an older request's growth OOMs, the youngest running
        request is the victim — not the one that needed the block."""
        reqs = [
            Request(0, 0.0, prompt_len=16, gen_len=16),  # grows to 8 blocks
            Request(1, 0.0, prompt_len=15, gen_len=8),
        ]
        # 8 blocks: both prompts admit (4+4); r0's first generated token
        # needs a 5th block with none free -> OOM -> r1 (youngest) evicted.
        engine = ServingEngine(tiny, METHODS["fp16"], self._config(blocks=8))
        metrics = engine.run(reqs)
        assert metrics.completed == 2
        assert metrics.preemptions >= 1
        assert engine.records[1].preemptions >= 1
        assert engine.records[0].preemptions == 0

    def test_victim_requeues_at_front(self, tiny):
        """A preempted request re-enters service before queued newcomers."""
        reqs = [
            Request(0, 0.0, prompt_len=16, gen_len=16),
            Request(1, 0.0, prompt_len=15, gen_len=8),
            Request(2, 0.0, prompt_len=17, gen_len=1),  # 5 blocks, queued
        ]
        engine = ServingEngine(
            tiny, METHODS["fp16"], self._config(blocks=8, max_batch=2)
        )
        metrics = engine.run(reqs)
        assert metrics.completed == 3
        assert engine.records[1].preemptions >= 1
        # r1's re-admission beat r2's first admission despite r2 waiting
        # (FCFS alone would have started r2, which fits first, earlier).
        assert engine.records[1].admitted_at < engine.records[2].admitted_at

    def test_self_preemption_when_no_other_victim(self, tiny):
        """A lone request that outgrows the device preempts itself; with a
        static budget that recurs forever and trips the livelock guard."""
        reqs = [Request(0, 0.0, prompt_len=16, gen_len=16)]  # needs 8 blocks
        engine = ServingEngine(
            tiny, METHODS["fp16"], self._config(blocks=6, max_iterations=500)
        )
        with pytest.raises(RuntimeError, match="iteration limit"):
            engine.run(reqs)
        assert engine.records[0].preemptions >= 1
        assert engine.records[0].status is not RequestStatus.FINISHED

    def test_preempted_request_restarts_cleanly(self, tiny):
        """Recompute semantics: a preempted request re-prefills from
        scratch and still produces its full generation."""
        reqs = [
            Request(0, 0.0, prompt_len=16, gen_len=16),
            Request(1, 0.0, prompt_len=15, gen_len=8),
        ]
        engine = ServingEngine(tiny, METHODS["fp16"], self._config(blocks=8))
        metrics = engine.run(reqs)
        rec = engine.records[1]
        assert rec.preemptions >= 1
        assert rec.status is RequestStatus.FINISHED
        assert rec.generated == 8 and rec.prefilled == 15
        assert metrics.output_tokens == 24


class TestChunkedPrefill:
    def _workload(self):
        return poisson_workload(
            30, arrival_rate=5.0, prompt_range=(2048, 6144),
            gen_range=(64, 192), rng=np.random.default_rng(4),
        )

    def test_all_complete_with_chunking(self, model):
        cfg = EngineConfig(prefill_chunk=512)
        metrics = ServingEngine(model, METHODS["turbo_mixed"], cfg).run(self._workload())
        assert metrics.completed == 30

    def test_chunking_cuts_decode_stalls(self, model):
        """Interleaving prefill chunks with decode lowers the p95 time per
        output token (no head-of-line blocking behind long prompts)."""
        reqs = self._workload()
        plain = ServingEngine(
            model, METHODS["turbo_mixed"], EngineConfig(prefill_chunk=None)
        ).run(reqs)
        chunked = ServingEngine(
            model, METHODS["turbo_mixed"], EngineConfig(prefill_chunk=512)
        ).run(reqs)
        assert chunked.p95_tpot < plain.p95_tpot
        # Throughput cost of chunking stays modest.
        assert chunked.throughput_tokens_per_s > 0.7 * plain.throughput_tokens_per_s

    def test_tiny_chunks_still_terminate(self, model):
        cfg = EngineConfig(prefill_chunk=64)
        reqs = poisson_workload(5, arrival_rate=3.0, rng=np.random.default_rng(1))
        metrics = ServingEngine(model, METHODS["turbo_mixed"], cfg).run(reqs)
        assert metrics.completed == 5

    def test_prefilling_request_defers_first_token(self, model):
        """Under chunking, TTFT reflects the chunk pipeline: a single huge
        prompt takes several iterations before its first token."""
        from repro.serving.request import Request

        reqs = [Request(0, 0.0, prompt_len=4096, gen_len=4)]
        plain = ServingEngine(
            model, METHODS["turbo_mixed"], EngineConfig(prefill_chunk=None)
        ).run(reqs)
        chunked = ServingEngine(
            model, METHODS["turbo_mixed"], EngineConfig(prefill_chunk=256)
        ).run(reqs)
        assert plain.completed == chunked.completed == 1
        # Same order of magnitude; chunking never loses tokens.
        assert chunked.output_tokens == plain.output_tokens


class TestServingMetricsPercentiles:
    """Percentile and counter extensions added with the overload stack."""

    def _run(self, model, slo=None):
        from repro.serving.metrics import SLO

        cfg = EngineConfig(slo=slo) if slo else EngineConfig()
        engine = ServingEngine(model, METHODS["turbo4"], cfg)
        wl = poisson_workload(40, arrival_rate=8.0, rng=np.random.default_rng(6))
        return engine.run(wl)

    def test_latency_percentiles_are_ordered(self, model):
        m = self._run(model)
        assert m.p50_ttft <= m.p95_ttft <= m.p99_ttft
        assert m.p50_tpot <= m.p95_tpot <= m.p99_tpot
        assert m.p50_queue_delay <= m.p95_queue_delay <= m.p99_queue_delay
        assert m.p50_queue_delay >= 0.0

    def test_as_dict_exposes_overload_counters(self, model):
        d = self._run(model).as_dict()
        for key in (
            "rejected", "shed", "failed", "brownout_tokens", "mean_kv_bits",
            "p50_ttft_s", "p99_ttft_s", "p50_queue_delay_s",
            "p99_queue_delay_s", "goodput_rps", "slo_attainment",
        ):
            assert key in d
        assert d["rejected"] == 0 and d["shed"] == 0
        # Without an SLO the goodput fields are None, not NaN, so the
        # dict is JSON-clean and comparable with ``==``.
        assert d["goodput_rps"] is None and d["slo_attainment"] is None

    def test_goodput_with_slo(self, model):
        from repro.serving.metrics import SLO

        m = self._run(model, slo=SLO(ttft_s=1e6, tpot_s=1e6))
        assert m.slo_attainment == 1.0  # infinitely loose deadline
        assert m.goodput_rps == pytest.approx(m.completed / m.makespan)

"""Tests for sub-byte code packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant.packing import pack_codes, packed_nbytes, unpack_codes
from repro.quant.progressive import pq_compress


class TestPackUnpack:
    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    def test_roundtrip(self, rng, bits):
        codes = rng.integers(0, 2**bits, size=(3, 41)).astype(np.uint8)
        packed, n = pack_codes(codes, bits)
        out = unpack_codes(packed, bits, n)
        np.testing.assert_array_equal(out, codes)

    @pytest.mark.parametrize("bits,expected", [(4, 50), (2, 25), (8, 100), (3, 39)])
    def test_packed_nbytes(self, bits, expected):
        assert packed_nbytes(100, bits) == expected

    def test_int4_density(self, rng):
        codes = rng.integers(0, 16, size=(128,)).astype(np.uint8)
        packed, _ = pack_codes(codes, 4)
        assert packed.nbytes == 64  # exactly 4 bits per code

    def test_int2_density(self, rng):
        codes = rng.integers(0, 4, size=(128,)).astype(np.uint8)
        packed, _ = pack_codes(codes, 2)
        assert packed.nbytes == 32

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([16], dtype=np.uint8), 4)

    def test_float_raises(self):
        with pytest.raises(TypeError):
            pack_codes(np.array([1.0]), 4)

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([0], dtype=np.uint8), 5)
        with pytest.raises(ValueError):
            packed_nbytes(10, 6)

    @given(
        st.sampled_from([2, 3, 4]),
        st.integers(1, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, bits, n):
        rng = np.random.default_rng(bits * 1000 + n)
        codes = rng.integers(0, 2**bits, size=(2, n)).astype(np.uint8)
        packed, length = pack_codes(codes, bits)
        np.testing.assert_array_equal(unpack_codes(packed, bits, length), codes)


class TestStorageClaimsRealizable:
    def test_cache_block_payload_matches_accounting(self, rng):
        """The ProgressiveBlock's reported code bits equal the actual
        packed payload size (up to per-row padding)."""
        q1 = rng.integers(-119, 120, size=(4, 64, 32)).astype(np.int8)
        block = pq_compress(q1, bits=4, float_scale=np.ones((4, 1, 1)))
        packed, n = pack_codes(block.codes.reshape(4, -1), 4)
        code_bits = int(np.prod(block.codes.shape)) * 4
        assert packed.nbytes * 8 == code_bits

"""Corruption-safe persistence under the seeded chaos injector.

Every corruption kind × stealth mode must end in one of exactly two
outcomes: *detected* (a typed :class:`CacheCorruptionError` from strict
loading) or *salvaged* (a valid sequence prefix plus the exact token
ranges needing recompute).  The one deliberate exception — a stealthy bit
flip re-stamps the checksum over data that remains valid-by-construction —
is the argument for computing checksums at write time, and is pinned here
as such.
"""

import numpy as np
import pytest

from repro.core import TurboAttention, TurboConfig
from repro.core.serialization import (
    SCHEMA_VERSION,
    load_state,
    salvage_state,
    save_state,
    state_from_arrays,
    state_to_arrays,
)
from repro.guard import (
    CORRUPTION_KINDS,
    CacheCorruptionError,
    ChaosInjector,
    ChecksumMismatchError,
    GeometryError,
    SchemaError,
    array_crc32,
    checksum_key,
    is_checksum_key,
)


@pytest.fixture
def state(rng):
    """2 full cache blocks + 24 staged buffer tokens (88 tokens total)."""
    h, n, d = 4, 88, 32
    q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
    turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
    _, st = turbo.prefill(q, k, v)
    return st


@pytest.fixture
def arrays(state):
    return state_to_arrays(state)


class TestChecksums:
    def test_every_payload_array_is_checksummed(self, arrays):
        payload = [k for k in arrays if not is_checksum_key(k)]
        for key in payload:
            assert checksum_key(key) in arrays
            assert int(arrays[checksum_key(key)]) == array_crc32(arrays[key])

    def test_checksum_covers_dtype_and_shape(self):
        a = np.arange(6, dtype=np.int64)
        assert array_crc32(a) != array_crc32(a.astype(np.int32))
        assert array_crc32(a) != array_crc32(a.reshape(2, 3))

    def test_checksums_optional(self, state):
        arrays = state_to_arrays(state, checksums=False)
        assert not any(is_checksum_key(k) for k in arrays)
        # Without the schema-v2 checksum contract this dict is not loadable
        # as v2 — the schema tag demands CRCs.
        with pytest.raises(SchemaError):
            state_from_arrays(arrays)


class TestChaosMatrix:
    """The acceptance matrix: detected, typed, or salvaged — never silent."""

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    @pytest.mark.parametrize("stealth", [False, True])
    def test_no_silent_wrong_output(self, arrays, state, kind, stealth):
        total = state.seq_len
        for seed in range(5):
            corrupted, event = ChaosInjector(seed=seed).corrupt(
                arrays, kind, stealth=stealth
            )
            assert event.kind == kind
            detected = None
            try:
                state_from_arrays(corrupted)
            except CacheCorruptionError as err:
                detected = err
            if detected is None:
                # Only a stealthy bit flip may pass strict load: the
                # flipped packed code is valid data with a matching CRC.
                assert kind == "bit_flip" and stealth
            res = salvage_state(corrupted)
            # Salvage always yields a valid prefix with exact accounting.
            kept = res.recovered_tokens + (
                len(res.state.buffer) if not res.buffer_dropped else 0
            )
            if res.recompute_ranges:
                starts = [s for s, _ in res.recompute_ranges]
                ends = [e for _, e in res.recompute_ranges]
                assert starts[0] == res.state.seq_len
                assert ends[-1] == total
            else:
                assert res.intact or (kind == "bit_flip" and stealth)

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_stale_crc_always_detected_with_typed_error(self, arrays, kind):
        """A realistic storage fault (checksum now stale) never loads."""
        corrupted, _ = ChaosInjector(seed=3).corrupt(arrays, kind, stealth=False)
        with pytest.raises(CacheCorruptionError):
            state_from_arrays(corrupted)

    def test_bit_flip_detected_by_checksum(self, arrays):
        corrupted, event = ChaosInjector(seed=0).corrupt(arrays, "bit_flip")
        with pytest.raises(ChecksumMismatchError) as exc:
            state_from_arrays(corrupted)
        assert exc.value.key == event.key

    def test_truncation_detected_as_schema_error(self, arrays):
        corrupted, event = ChaosInjector(seed=0).corrupt(arrays, "truncate")
        assert event.key not in corrupted
        with pytest.raises(SchemaError):
            state_from_arrays(corrupted)

    def test_stealth_scale_zero_detected_semantically(self, arrays):
        """With a re-stamped CRC, only the value validator can object."""
        for seed in range(5):
            corrupted, _ = ChaosInjector(seed=seed).corrupt(
                arrays, "scale_zero", stealth=True
            )
            with pytest.raises(CacheCorruptionError):
                state_from_arrays(corrupted)

    def test_injector_is_deterministic(self, arrays):
        _, e1 = ChaosInjector(seed=9).corrupt(arrays, "bit_flip")
        _, e2 = ChaosInjector(seed=9).corrupt(arrays, "bit_flip")
        assert (e1.key, e1.detail) == (e2.key, e2.detail)

    def test_unknown_kind_rejected(self, arrays):
        with pytest.raises(ValueError):
            ChaosInjector().corrupt(arrays, "gamma_ray")

    def test_input_dict_not_mutated(self, arrays):
        before = {k: v.copy() for k, v in arrays.items()}
        ChaosInjector(seed=1).corrupt(arrays, "scale_zero")
        assert set(arrays) == set(before)
        for k in before:
            np.testing.assert_array_equal(arrays[k], before[k])


class TestSalvage:
    def test_intact_state_salvages_fully(self, arrays, state):
        res = salvage_state(arrays)
        assert res.intact
        assert not res.recompute_ranges
        assert res.state.seq_len == state.seq_len
        assert "intact" in res.summary()

    def test_corrupt_block_truncates_prefix(self, arrays, state):
        bad = dict(arrays)
        bad["block1.length"] = np.asarray(10**6, dtype=np.int64)
        # Re-stamp the CRC so the *geometry* validator (not the checksum)
        # is what catches the bad length.
        bad[checksum_key("block1.length")] = np.asarray(
            array_crc32(bad["block1.length"]), dtype=np.uint32
        )
        res = salvage_state(bad)
        assert res.dropped_blocks == [1]
        assert res.buffer_dropped  # staged tokens sit after the gap
        assert res.state.seq_len == 32
        assert res.recompute_ranges == [(32, state.seq_len)]
        assert res.errors and isinstance(res.errors[0], GeometryError)

    def test_corrupt_buffer_keeps_blocks(self, arrays, state):
        bad = dict(arrays)
        sc = bad["buffer.k_scale"].copy()
        sc[0] = np.nan
        bad["buffer.k_scale"] = sc
        res = salvage_state(bad)
        assert not res.dropped_blocks
        assert res.buffer_dropped
        assert res.state.seq_len == 64  # both blocks survive
        assert res.recompute_ranges == [(64, state.seq_len)]

    def test_corrupt_meta_is_unsalvageable(self, arrays):
        bad = dict(arrays)
        del bad["meta.n_heads"]
        with pytest.raises(CacheCorruptionError):
            salvage_state(bad)

    def test_salvaged_state_decodes(self, arrays, rng):
        """The recovered prefix is a live, decodable state."""
        bad = dict(arrays)
        bad["block1.length"] = np.asarray(-3, dtype=np.int64)
        res = salvage_state(bad)
        turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
        out = turbo.decode_step(
            rng.standard_normal((4, 32)), rng.standard_normal((4, 32)),
            rng.standard_normal((4, 32)), res.state,
        )
        assert np.isfinite(out).all()

    def test_file_roundtrip_with_salvage(self, state, arrays, tmp_path):
        path = tmp_path / "kv.npz"
        save_state(path, state)
        res = load_state(path, salvage=True)
        assert res.intact
        # Corrupt the file's arrays and persist again.
        corrupted, _ = ChaosInjector(seed=2).corrupt(arrays, "scale_zero")
        np.savez(tmp_path / "bad.npz", **corrupted)
        with pytest.raises(CacheCorruptionError):
            load_state(tmp_path / "bad.npz")
        res = load_state(tmp_path / "bad.npz", salvage=True)
        assert res.recompute_ranges or res.intact


class TestValidation:
    def test_schema_tag_round_trip(self, arrays):
        assert int(arrays["meta.schema"]) == SCHEMA_VERSION

    def test_future_schema_rejected(self, arrays):
        bad = dict(arrays)
        bad["meta.schema"] = np.asarray(SCHEMA_VERSION + 1, dtype=np.int64)
        with pytest.raises(SchemaError, match="unsupported schema"):
            state_from_arrays(bad)

    def test_not_a_state_rejected(self):
        with pytest.raises(SchemaError):
            state_from_arrays({"foo": np.zeros(3)})

    def test_staged_tokens_exceeding_capacity_is_typed_error(self, arrays):
        """The satellite bugfix: a cache saved with a larger buffer than
        the restoring config must raise a clear error, not a raw
        broadcast failure."""
        bad = dict(arrays)
        bad["buffer.capacity"] = np.asarray(8, dtype=np.int64)  # < 24 staged
        bad[checksum_key("buffer.capacity")] = np.asarray(
            array_crc32(bad["buffer.capacity"]), dtype=np.uint32
        )
        with pytest.raises(GeometryError, match="staged tokens"):
            state_from_arrays(bad)

    def test_seq_len_mismatch_rejected(self, arrays):
        bad = dict(arrays)
        bad["meta.seq_len"] = np.asarray(10**6, dtype=np.int64)
        bad[checksum_key("meta.seq_len")] = np.asarray(
            array_crc32(bad["meta.seq_len"]), dtype=np.uint32
        )
        with pytest.raises(GeometryError, match="seq_len"):
            state_from_arrays(bad)

    def test_illegal_head_bits_rejected(self, arrays):
        bad = dict(arrays)
        hb = bad["meta.head_bits"].copy()
        hb[0] = 7
        bad["meta.head_bits"] = hb
        bad[checksum_key("meta.head_bits")] = np.asarray(
            array_crc32(hb), dtype=np.uint32
        )
        with pytest.raises(CacheCorruptionError, match="bit-width"):
            state_from_arrays(bad)

    def test_legacy_tagless_dict_still_loads(self, arrays, state):
        """Schema-v1 files (no tag, no CRCs) get geometry validation only."""
        legacy = {
            k: v for k, v in arrays.items()
            if not is_checksum_key(k) and k not in ("meta.schema", "meta.seq_len")
        }
        restored = state_from_arrays(legacy)
        assert restored.seq_len == state.seq_len

    def test_legacy_dict_still_value_validated(self, arrays):
        legacy = {
            k: v for k, v in arrays.items()
            if not is_checksum_key(k) and k not in ("meta.schema", "meta.seq_len")
        }
        sc = legacy["buffer.v_scale"].copy()
        sc[:] = -1.0
        legacy["buffer.v_scale"] = sc
        with pytest.raises(CacheCorruptionError):
            state_from_arrays(legacy)


class TestRestoreAPI:
    """The public DecodeBuffer.restore entry point (satellite refactor)."""

    def _buffer(self, h=2, d=8, cap=16):
        from repro.core import DecodeBuffer

        return DecodeBuffer(
            h, d, capacity=cap,
            k_scale=np.full((h, 1, 1), 0.05), v_scale=np.full((h, 1, 1), 0.05),
        )

    def test_restore_round_trip(self, rng):
        buf = self._buffer()
        codes = rng.integers(-119, 120, size=(2, 5, 8)).astype(np.int8)
        buf.restore(codes, codes)
        assert len(buf) == 5
        np.testing.assert_array_equal(buf.codes()[0], codes)

    def test_restore_over_capacity_rejected(self, rng):
        buf = self._buffer(cap=4)
        codes = rng.integers(-10, 10, size=(2, 5, 8)).astype(np.int8)
        with pytest.raises(ValueError, match="capacity"):
            buf.restore(codes, codes)

    def test_restore_shape_mismatch_rejected(self, rng):
        buf = self._buffer()
        k = rng.integers(-10, 10, size=(2, 3, 8)).astype(np.int8)
        v = rng.integers(-10, 10, size=(2, 4, 8)).astype(np.int8)
        with pytest.raises(ValueError, match="match"):
            buf.restore(k, v)
        with pytest.raises(ValueError):
            buf.restore(k[:1], v[:1])

    def test_restore_resets_saturation_window(self):
        buf = self._buffer()
        buf.append(np.full((2, 8), 100.0), np.zeros((2, 8)))  # clamps hard
        assert buf.window_clamp_fraction().max() > 0
        buf.restore(
            np.zeros((2, 2, 8), dtype=np.int8), np.zeros((2, 2, 8), dtype=np.int8)
        )
        assert buf.window_clamp_fraction().max() == 0.0
        assert len(buf) == 2

"""Tests for shared harness utilities."""

import numpy as np

from repro.harness.common import accuracy_method_registry, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        # All rows equal width.
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1

    def test_handles_numbers_and_strings(self):
        text = render_table(["col"], [[1.5], ["abc"], [None]])
        assert "1.5" in text and "abc" in text and "None" in text

    def test_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text


class TestRegistry:
    def test_seven_table2_methods(self):
        reg = accuracy_method_registry()
        assert len(reg) == 7
        assert set(reg) == {
            "fp16", "kivi_4bit", "gear_4bit", "turbo_4bit",
            "kivi_3bit", "gear_3bit", "turbo_mixed",
        }

    def test_factories_produce_fresh_backends(self):
        reg = accuracy_method_registry()
        a = reg["turbo_mixed"]()
        b = reg["turbo_mixed"]()
        assert a is not b
        assert a.config.mixed_precision

    def test_backends_have_interface(self, rng):
        q, k, v = (rng.standard_normal((2, 40, 8)) for _ in range(3))
        for name, factory in accuracy_method_registry().items():
            backend = factory()
            out, state = backend.prefill(q, k, v, causal=True)
            assert out.shape == (2, 40, 8), name
            assert state.effective_bits_per_value() > 0, name

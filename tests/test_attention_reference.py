"""Tests for reference attention, masks, and the online softmax."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.masks import NEG_INF, causal_mask, causal_mask_block
from repro.attention.online_softmax import OnlineSoftmaxState, online_softmax
from repro.attention.reference import reference_attention, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.standard_normal((5, 9)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_extreme_values_stable(self):
        p = softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(p).all() and p[0] == pytest.approx(1.0)


class TestCausalMask:
    def test_square_structure(self):
        m = causal_mask(4, 4)
        assert np.all(np.triu(np.ones((4, 4)), k=1).astype(bool) == (m == NEG_INF))

    def test_decode_alignment(self):
        # One query against 5 keys: everything visible.
        m = causal_mask(1, 5)
        assert np.all(m == 0)

    def test_partial_query_window(self):
        # 2 queries at the end of 4 keys: row 0 sees keys 0-2, row 1 all.
        m = causal_mask(2, 4)
        assert m[0, 3] == NEG_INF and np.all(m[0, :3] == 0)
        assert np.all(m[1] == 0)

    def test_more_queries_than_keys_raises(self):
        with pytest.raises(ValueError):
            causal_mask(5, 4)

    def test_block_mask_consistent_with_full(self):
        full = causal_mask(8, 8)
        for qs in (0, 4):
            for ks in (0, 4):
                blk = causal_mask_block(qs, 4, ks, 4, offset=0)
                np.testing.assert_array_equal(blk, full[qs : qs + 4, ks : ks + 4])


class TestReferenceAttention:
    def test_uniform_scores_average_values(self, rng):
        # Identical keys -> uniform attention -> output = mean of values.
        q = rng.standard_normal((1, 3, 8))
        k = np.ones((1, 5, 8))
        v = rng.standard_normal((1, 5, 8))
        out = reference_attention(q, k, v)
        np.testing.assert_allclose(out, np.broadcast_to(v.mean(axis=1, keepdims=True), out.shape))

    def test_one_hot_retrieval(self):
        # Sharp matching key -> output ~= that key's value.
        d = 16
        q = np.zeros((1, 1, d))
        q[0, 0, 0] = 50.0
        k = np.zeros((1, 4, d))
        k[0, 2, 0] = 50.0
        v = np.arange(4 * d, dtype=np.float64).reshape(1, 4, d)
        out = reference_attention(q, k, v)
        np.testing.assert_allclose(out[0, 0], v[0, 2], rtol=1e-6)

    def test_mask_blocks_future(self, rng):
        q, k, v = (rng.standard_normal((2, 6, 8)) for _ in range(3))
        masked = reference_attention(q, k, v, mask=causal_mask(6, 6))
        # Row 0 with causal mask only sees key 0 -> output is v[0].
        np.testing.assert_allclose(masked[:, 0, :], v[:, 0, :], rtol=1e-9)

    def test_lse_definition(self, rng):
        q, k, v = (rng.standard_normal((1, 4, 8)) for _ in range(3))
        out, lse = reference_attention(q, k, v, return_lse=True)
        s = (q @ np.swapaxes(k, -1, -2)) / np.sqrt(8)
        expected = np.log(np.exp(s).sum(axis=-1))
        np.testing.assert_allclose(lse, expected, rtol=1e-9)

    def test_custom_scale(self, rng):
        q, k, v = (rng.standard_normal((1, 4, 8)) for _ in range(3))
        a = reference_attention(q, k, v, scale=1.0)
        b = reference_attention(q * 2, k, v, scale=0.5)
        np.testing.assert_allclose(a, b, rtol=1e-9)


class TestOnlineSoftmax:
    def test_matches_two_pass(self, rng):
        x = rng.standard_normal((3, 7, 50))
        np.testing.assert_allclose(online_softmax(x, tile=16), softmax(x), rtol=1e-12)

    @given(st.integers(1, 7), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_any_tiling(self, tile, n):
        rng = np.random.default_rng(n * 131 + tile)
        x = rng.standard_normal((2, 3, n))
        np.testing.assert_allclose(online_softmax(x, tile=tile), softmax(x), rtol=1e-12)

    def test_state_accumulates_output(self, rng):
        scores = rng.standard_normal((2, 4, 24))
        values = rng.standard_normal((2, 24, 8))
        state = OnlineSoftmaxState.initial((2,), 4, d_v=8)
        for s in range(0, 24, 8):
            state.update(scores[..., s : s + 8], values=values[..., s : s + 8, :])
        out, lse = state.finalize()
        expected = softmax(scores) @ values
        np.testing.assert_allclose(out, expected, rtol=1e-12)
        np.testing.assert_allclose(
            lse, np.log(np.exp(scores).sum(axis=-1)), rtol=1e-12
        )

    def test_masked_rows_yield_zero(self):
        state = OnlineSoftmaxState.initial((), 2, d_v=4)
        scores = np.full((2, 8), -np.inf)
        scores[1, 0] = 1.0
        state.update(scores, values=np.ones((8, 4)))
        out, lse = state.finalize()
        np.testing.assert_array_equal(out[0], 0.0)
        assert lse[0] == -np.inf
        np.testing.assert_allclose(out[1], 1.0)

    def test_p_transform_applies_only_to_output(self, rng):
        scores = rng.standard_normal((2, 16))
        values = rng.standard_normal((16, 4))
        zero_transform = lambda p: np.zeros_like(p)
        state = OnlineSoftmaxState.initial((), 2, d_v=4)
        state.update(scores, values=values, p_transform=zero_transform)
        out, lse = state.finalize()
        np.testing.assert_array_equal(out, 0.0)  # transform zeroed the PV path
        assert np.all(np.isfinite(lse))  # ...but l still accumulated

    def test_update_requires_values_when_accumulating(self, rng):
        state = OnlineSoftmaxState.initial((), 2, d_v=4)
        with pytest.raises(ValueError):
            state.update(rng.standard_normal((2, 8)))

"""Cross-module integration and fuzz consistency tests.

These tie the pipeline together: prefill-vs-decode agreement, buffer-flush
boundary crossings, bookkeeping invariants under randomized workloads, and
end-to-end model generation through every backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attention.masks import causal_mask
from repro.attention.reference import reference_attention
from repro.baselines import FP16Attention, GEARAttention, KIVIAttention
from repro.core import TurboAttention, TurboConfig
from repro.models.config import MODEL_PRESETS
from repro.models.transformer import TransformerLM


class TestPrefillDecodeConsistency:
    def test_turbo_8bit_decode_matches_prefill_row(self, rng):
        """At 8-bit storage without SAS, a decode step's output matches the
        corresponding row of a longer prefill (cache-consistency of
        Algorithms 1 and 2)."""
        h, n, d = 2, 96, 16
        q, k, v = (rng.standard_normal((h, n + 1, d)) for _ in range(3))
        cfg = TurboConfig(block_q=32, block_k=32, buffer_size=32, kv_bits=8, use_sas=False)
        turbo = TurboAttention(cfg)
        # Path A: prefill all n+1 tokens; take the last row.
        out_full, _ = turbo.prefill(q, k, v, causal=True)
        # Path B: prefill n tokens, decode the last.
        _, state = turbo.prefill(q[:, :n], k[:, :n], v[:, :n], causal=True)
        out_step = turbo.decode_step(q[:, n], k[:, n], v[:, n], state)
        rel = np.linalg.norm(out_step - out_full[:, n]) / np.linalg.norm(out_full[:, n])
        assert rel < 0.02

    def test_turbo_default_decode_tracks_reference_across_flushes(self, rng):
        """Error stays bounded while decode crosses several buffer-flush
        boundaries (no drift from recompression, because there is none)."""
        h, n, d = 2, 64, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        turbo = TurboAttention(TurboConfig(block_q=16, block_k=16, buffer_size=16))
        _, state = turbo.prefill(q, k, v, causal=True)
        k_all, v_all = k, v
        rels = []
        for _ in range(50):  # crosses ~3 flush boundaries
            q1, k1, v1 = (rng.standard_normal((h, d)) for _ in range(3))
            out = turbo.decode_step(q1, k1, v1, state)
            k_all = np.concatenate([k_all, k1[:, None, :]], axis=1)
            v_all = np.concatenate([v_all, v1[:, None, :]], axis=1)
            ref = reference_attention(q1[:, None, :], k_all, v_all)[:, 0, :]
            rels.append(np.linalg.norm(out - ref) / np.linalg.norm(ref))
        # No upward drift: late-window error comparable to early-window.
        assert np.mean(rels[-10:]) < 2.5 * np.mean(rels[:10]) + 0.05

    def test_fp16_backend_exact_consistency(self, rng):
        h, n, d = 2, 40, 16
        q, k, v = (rng.standard_normal((h, n + 1, d)) for _ in range(3))
        backend = FP16Attention()
        out_full, _ = backend.prefill(q, k, v, causal=True)
        _, state = backend.prefill(q[:, :n], k[:, :n], v[:, :n], causal=True)
        out_step = backend.decode_step(q[:, n], k[:, n], v[:, n], state)
        np.testing.assert_allclose(out_step, out_full[:, n], atol=5e-3)


class TestBookkeepingFuzz:
    @given(
        st.integers(20, 150),   # prefill length
        st.integers(1, 40),     # decode steps
        st.sampled_from([16, 32]),  # block size
        st.sampled_from([2, 4]),    # kv bits
    )
    @settings(max_examples=20, deadline=None)
    def test_invariants_hold(self, n, steps, block, bits):
        rng = np.random.default_rng(n * 1000 + steps)
        h, d = 2, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        turbo = TurboAttention(
            TurboConfig(block_q=block, block_k=block, buffer_size=block, kv_bits=bits)
        )
        _, state = turbo.prefill(q, k, v, causal=True)
        assert state.seq_len == n
        prev_bits = state.storage_bits
        for i in range(steps):
            out = turbo.decode_step(
                rng.standard_normal((h, d)),
                rng.standard_normal((h, d)),
                rng.standard_normal((h, d)),
                state,
            )
            assert np.all(np.isfinite(out))
            assert state.seq_len == n + i + 1
            # Cache blocks are always full-sized; buffer below capacity.
            assert all(b.length == block for b in state.cache.blocks)
            assert len(state.buffer) <= block
        assert state.storage_bits > 0
        # Compression held throughout (generous bound incl. metadata).
        assert state.effective_bits_per_value() < bits + 9


class TestAllBackendsThroughModel:
    @pytest.mark.parametrize(
        "factory",
        [
            FP16Attention,
            KIVIAttention,
            GEARAttention,
            lambda: TurboAttention(TurboConfig()),
            lambda: TurboAttention(TurboConfig(mixed_precision=True)),
        ],
        ids=["fp16", "kivi", "gear", "turbo4", "turbo_mixed"],
    )
    def test_generation_runs_and_is_finite(self, factory):
        cfg = MODEL_PRESETS["qwen2ish"]
        model = TransformerLM(cfg, attention_factory=factory)
        logits = model.prefill(np.arange(70) % cfg.vocab_size)
        assert np.all(np.isfinite(logits))
        for t in range(8):
            step = model.decode_step(int(np.argmax(logits[-1])) if t == 0 else t)
            assert np.all(np.isfinite(step))

"""Tests for the transformer substrate: RoPE, layers, model, generation."""

import numpy as np
import pytest

from repro.baselines.fp16_cache import FP16Attention
from repro.core import TurboAttention, TurboConfig
from repro.models.config import MODEL_PRESETS, ModelConfig
from repro.models.generation import (
    forced_decode,
    generate,
    logit_divergence,
    teacher_forced_agreement,
    token_agreement,
)
from repro.models.layers import RMSNorm, SwiGLU, silu, softmax_logits
from repro.models.outliers import OutlierProfile, channel_scales
from repro.models.rope import apply_rope, rope_frequencies
from repro.models.synthetic_stats import synthetic_qkv
from repro.models.transformer import TransformerLM


class TestRope:
    def test_preserves_norms(self, rng):
        x = rng.standard_normal((2, 10, 16))
        freqs = rope_frequencies(16)
        out = apply_rope(x, np.arange(10), freqs)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-12
        )

    def test_position_zero_identity(self, rng):
        x = rng.standard_normal((1, 1, 16))
        out = apply_rope(x, np.array([0]), rope_frequencies(16))
        np.testing.assert_allclose(out, x)

    def test_relative_property(self, rng):
        """q_m . k_n depends only on m - n."""
        freqs = rope_frequencies(16)
        q = rng.standard_normal((1, 1, 16))
        k = rng.standard_normal((1, 1, 16))
        s1 = apply_rope(q, np.array([5]), freqs) @ apply_rope(k, np.array([3]), freqs).swapaxes(-1, -2)
        s2 = apply_rope(q, np.array([12]), freqs) @ apply_rope(k, np.array([10]), freqs).swapaxes(-1, -2)
        np.testing.assert_allclose(s1, s2, rtol=1e-9)

    def test_odd_dim_raises(self):
        with pytest.raises(ValueError):
            rope_frequencies(15)


class TestLayers:
    def test_rmsnorm_unit_scale(self, rng):
        x = rng.standard_normal((4, 16)) * 7
        out = RMSNorm(np.ones(16))(x)
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_rmsnorm_weight_applies(self, rng):
        x = rng.standard_normal((4, 16))
        out1 = RMSNorm(np.ones(16))(x)
        out2 = RMSNorm(np.full(16, 2.0))(x)
        np.testing.assert_allclose(out2, 2 * out1)

    def test_silu_known_values(self):
        assert silu(np.array([0.0]))[0] == 0.0
        assert silu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert silu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_silu_no_overflow(self):
        out = silu(np.array([1e5, -1e5]))
        assert np.all(np.isfinite(out))

    def test_swiglu_composition(self, rng):
        gate = lambda x: x * 2
        up = lambda x: x + 1
        down = lambda x: x * 0.5
        x = rng.standard_normal((3, 4))
        out = SwiGLU(gate, up, down)(x)
        np.testing.assert_allclose(out, 0.5 * (silu(2 * x) * (x + 1)))

    def test_softmax_logits(self, rng):
        p = softmax_logits(rng.standard_normal((5, 11)))
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)


class TestOutliers:
    def test_channel_scales_count(self, rng):
        s = channel_scales(100, fraction=0.1, gain=5.0, jitter=0.0, rng=rng)
        assert (s > 1.0).sum() == 10
        assert np.all(s[s <= 1.0] == 1.0)

    def test_zero_fraction_identity(self, rng):
        s = channel_scales(64, fraction=0.0, gain=5.0, jitter=0.3, rng=rng)
        np.testing.assert_array_equal(s, 1.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            OutlierProfile(key_outlier_fraction=1.5)
        with pytest.raises(ValueError):
            OutlierProfile(key_outlier_gain=0.5)
        with pytest.raises(ValueError):
            OutlierProfile(value_channel_bias=-1.0)

    def test_synthetic_qkv_shapes(self):
        cfg = MODEL_PRESETS["llama3ish"]
        rng = np.random.default_rng(0)
        qkv = synthetic_qkv(cfg, 64, rng)
        assert qkv.q.shape == (cfg.n_heads, 64, cfg.head_dim)
        assert qkv.k.shape == (cfg.n_kv_heads, 64, cfg.head_dim)

    def test_phi3_values_have_heavier_outliers(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        v_llama = synthetic_qkv(MODEL_PRESETS["llama3ish"], 512, rng1).v
        v_phi = synthetic_qkv(MODEL_PRESETS["phi3ish"], 512, rng2).v
        kurt = lambda x: np.mean(((x - x.mean()) / x.std()) ** 4)
        assert np.abs(v_phi).max() / np.abs(v_phi).std() > np.abs(v_llama).max() / np.abs(v_llama).std() * 0.8


class TestModelConfig:
    def test_presets_valid(self):
        for cfg in MODEL_PRESETS.values():
            assert cfg.d_model == cfg.n_heads * cfg.head_dim
            assert cfg.param_count() > 0

    def test_invalid_gqa(self):
        with pytest.raises(ValueError):
            ModelConfig(name="x", n_layers=1, n_heads=5, n_kv_heads=2, head_dim=8, d_ff=16)


class TestTransformerLM:
    def test_prefill_logits_shape(self):
        cfg = MODEL_PRESETS["llama3ish"]
        model = TransformerLM(cfg)
        logits = model.prefill(np.arange(12))
        assert logits.shape == (12, cfg.vocab_size)

    def test_decode_matches_prefill_with_exact_backend(self):
        """Cache-consistency: decoding token t yields the same logits as a
        prefill of the extended sequence, for the exact FP16 backend."""
        cfg = MODEL_PRESETS["phi3ish"]
        tokens = np.arange(20) % cfg.vocab_size
        model = TransformerLM(cfg, attention_factory=FP16Attention)
        model.prefill(tokens[:19])
        step = model.decode_step(int(tokens[19]))

        model2 = TransformerLM(cfg, attention_factory=FP16Attention)
        full = model2.prefill(tokens)
        np.testing.assert_allclose(step, full[-1], atol=2e-2, rtol=1e-2)

    def test_prefill_twice_raises(self):
        model = TransformerLM(MODEL_PRESETS["llama3ish"])
        model.prefill(np.arange(4))
        with pytest.raises(RuntimeError):
            model.prefill(np.arange(4))

    def test_decode_before_prefill_raises(self):
        model = TransformerLM(MODEL_PRESETS["llama3ish"])
        with pytest.raises(RuntimeError):
            model.decode_step(0)

    def test_reset_allows_reuse(self):
        model = TransformerLM(MODEL_PRESETS["llama3ish"])
        a = model.prefill(np.arange(6))
        model.reset()
        b = model.prefill(np.arange(6))
        np.testing.assert_array_equal(a, b)

    def test_kv_storage_tracks_backend(self):
        cfg = MODEL_PRESETS["llama3ish"]
        tokens = np.arange(64)
        fp16 = TransformerLM(cfg, attention_factory=FP16Attention)
        fp16.prefill(tokens)
        turbo = TransformerLM(
            cfg, attention_factory=lambda: TurboAttention(TurboConfig())
        )
        turbo.prefill(tokens)
        assert turbo.kv_storage_bits < fp16.kv_storage_bits / 2

    def test_deterministic_weights(self):
        cfg = MODEL_PRESETS["llama3ish"]
        a = TransformerLM(cfg).prefill(np.arange(5))
        b = TransformerLM(cfg).prefill(np.arange(5))
        np.testing.assert_array_equal(a, b)


class TestGeneration:
    def test_generate_token_count(self):
        model = TransformerLM(MODEL_PRESETS["llama3ish"])
        res = generate(model, np.arange(8), 5)
        assert res.tokens.shape == (5,)
        assert res.logits is None

    def test_generate_keep_logits(self):
        model = TransformerLM(MODEL_PRESETS["llama3ish"])
        res = generate(model, np.arange(8), 4, keep_logits=True)
        assert res.logits.shape == (4, MODEL_PRESETS["llama3ish"].vocab_size)

    def test_forced_decode_follows_trajectory(self):
        cfg = MODEL_PRESETS["llama3ish"]
        model = TransformerLM(cfg)
        traj = generate(model, np.arange(8), 6).tokens
        forced = forced_decode(model, np.arange(8), traj)
        # Forcing a model's own greedy trajectory reproduces its picks.
        np.testing.assert_array_equal(forced.tokens, traj)

    def test_agreement_bounds(self):
        assert token_agreement(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0
        assert token_agreement(np.array([1, 2]), np.array([3, 4])) == 0.0
        assert token_agreement(np.array([]), np.array([])) == 1.0

    def test_self_agreement_is_one(self):
        cfg = MODEL_PRESETS["llama3ish"]
        ref = TransformerLM(cfg)
        cand = TransformerLM(cfg)
        assert teacher_forced_agreement(ref, cand, np.arange(10), 5) == 1.0

    def test_logit_divergence_zero_for_identical(self, rng):
        logits = rng.standard_normal((5, 16))
        assert logit_divergence(logits, logits) == pytest.approx(0.0, abs=1e-12)

    def test_logit_divergence_positive(self, rng):
        a = rng.standard_normal((5, 16))
        b = a + rng.standard_normal((5, 16))
        assert logit_divergence(a, b) > 0.0

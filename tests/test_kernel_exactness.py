"""Bit-exactness of the vectorized kernels against loop oracles.

The PR that batched the tile/span iteration promised *zero* numeric
drift: every fast path must produce byte-identical floats to the naive
per-tile / per-span loop it replaced.  These tests pin that promise with
``np.array_equal`` (no tolerances) across the axes that select different
code paths: guard on/off, KV storage widths, GQA grouping, SAS on/off,
ragged tile shapes, and the bulk decode API vs the scalar step loop.
"""

import numpy as np
import pytest

from repro.core.config import TurboConfig
from repro.core.decode import _gather_spans, turbo_decode_step, turbo_decode_steps
from repro.core.prefill import turbo_prefill
from repro.guard import GuardConfig
from repro.quant.integer_gemm import int_matmul

from tests._reference_kernels import (
    naive_int_matmul,
    reference_decode_attend,
    reference_prefill_attention,
)


def _qkv(rng, hq, hkv, n, d):
    return (
        rng.standard_normal((hq, n, d)),
        rng.standard_normal((hkv, n, d)),
        rng.standard_normal((hkv, n, d)),
    )


def test_int_matmul_matches_int64_oracle():
    # The BLAS float64 shortcut must equal the naive integer product for
    # every in-range operand, including the +/-127 extremes.
    rng = np.random.default_rng(3)
    a = rng.integers(-127, 128, size=(7, 33, 65), dtype=np.int8)
    b = rng.integers(-127, 128, size=(7, 65, 41), dtype=np.int8)
    assert np.array_equal(int_matmul(a, b), naive_int_matmul(a, b))


@pytest.mark.parametrize("hq,hkv", [(8, 2), (4, 4)])
@pytest.mark.parametrize("kv_bits", [2, 4, 8])
def test_prefill_matches_loop_oracle(hq, hkv, kv_bits):
    rng = np.random.default_rng(hq * 100 + kv_bits)
    q, k, v = _qkv(rng, hq, hkv, 300, 64)
    config = TurboConfig()
    bits = np.full(hkv, kv_bits, dtype=np.int32)
    res = turbo_prefill(q, k, v, config, bits)
    ref_out, ref_lse = reference_prefill_attention(q, k, v, config)
    assert np.array_equal(res.output, ref_out)
    assert np.array_equal(res.lse, ref_lse)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"use_sas": False},
        {"block_q": 48, "block_k": 56, "buffer_size": 64},
    ],
    ids=["nosas", "ragged"],
)
def test_prefill_matches_loop_oracle_variants(kwargs):
    rng = np.random.default_rng(17)
    q, k, v = _qkv(rng, 8, 2, 250, 64)
    config = TurboConfig(**kwargs)
    bits = np.full(2, 4, dtype=np.int32)
    res = turbo_prefill(q, k, v, config, bits)
    ref_out, ref_lse = reference_prefill_attention(q, k, v, config)
    assert np.array_equal(res.output, ref_out)
    assert np.array_equal(res.lse, ref_lse)


def test_prefill_noncausal_matches_loop_oracle():
    rng = np.random.default_rng(23)
    q, k, v = _qkv(rng, 8, 2, 192, 64)
    config = TurboConfig()
    bits = np.full(2, 4, dtype=np.int32)
    res = turbo_prefill(q, k, v, config, bits, causal=False)
    ref_out, ref_lse = reference_prefill_attention(q, k, v, config, causal=False)
    assert np.array_equal(res.output, ref_out)
    assert np.array_equal(res.lse, ref_lse)


def test_prefill_guard_on_equals_off_on_clean_inputs():
    # The guard path keeps the per-tile loop; on clean inputs (nothing
    # trips) it must agree with the batched guard-free path bit for bit.
    rng = np.random.default_rng(5)
    q, k, v = _qkv(rng, 8, 2, 200, 64)
    config = TurboConfig()
    bits = np.full(2, 4, dtype=np.int32)
    fast = turbo_prefill(q, k, v, config, bits)
    guarded = turbo_prefill(q, k, v, config, bits, guard=GuardConfig())
    assert np.array_equal(fast.output, guarded.output)
    assert np.array_equal(fast.lse, guarded.lse)
    assert guarded.report is not None and guarded.report.fallback_tiles == 0


@pytest.mark.parametrize("hq,hkv", [(8, 2), (4, 4)])
@pytest.mark.parametrize("kv_bits", [2, 4, 8])
def test_decode_step_matches_span_oracle(hq, hkv, kv_bits):
    rng = np.random.default_rng(hq * 10 + kv_bits)
    q, k, v = _qkv(rng, hq, hkv, 256, 64)
    config = TurboConfig()
    bits = np.full(hkv, kv_bits, dtype=np.int32)
    res = turbo_prefill(q, k, v, config, bits)
    cache, buffer = res.cache, res.buffer
    for _ in range(5):
        q_t = rng.standard_normal((hq, 64))
        k_t = rng.standard_normal((hkv, 64))
        v_t = rng.standard_normal((hkv, 64))
        out = turbo_decode_step(q_t, k_t, v_t, cache, buffer, config)
        # The step just appended (k_t, v_t); the oracle sees the same
        # spans the kernel attended over.
        spans = _gather_spans(cache, buffer)
        ref_out, _ref_lse = reference_decode_attend(spans, q_t, hkv, config)
        assert np.array_equal(out, ref_out)


def test_decode_bulk_equals_scalar_loop():
    # The multi-token bulk API must be indistinguishable from calling
    # the scalar step in a loop: same outputs, same end cache/buffer.
    rng = np.random.default_rng(9)
    hq, hkv, d, steps = 8, 2, 64, 150
    q, k, v = _qkv(rng, hq, hkv, 200, d)
    config = TurboConfig()
    bits = np.full(hkv, 4, dtype=np.int32)
    res_a = turbo_prefill(q, k, v, config, bits)
    res_b = turbo_prefill(q, k, v, config, bits)
    qs = rng.standard_normal((steps, hq, d))
    ks = rng.standard_normal((steps, hkv, d))
    vs = rng.standard_normal((steps, hkv, d))

    bulk = turbo_decode_steps(qs, ks, vs, res_a.cache, res_a.buffer, config)
    scalar = np.stack(
        [
            turbo_decode_step(qs[t], ks[t], vs[t], res_b.cache, res_b.buffer, config)
            for t in range(steps)
        ]
    )
    assert np.array_equal(bulk, scalar)
    for (ka, va, ksa, vsa, la), (kb, vb, ksb, vsb, lb) in zip(
        res_a.cache.iter_decompressed(), res_b.cache.iter_decompressed()
    ):
        assert np.array_equal(ka, kb) and np.array_equal(va, vb)
        assert np.array_equal(ksa, ksb) and np.array_equal(vsa, vsb)
        assert la == lb
    assert np.array_equal(res_a.buffer.codes()[0], res_b.buffer.codes()[0])
    assert np.array_equal(res_a.buffer.codes()[1], res_b.buffer.codes()[1])


def test_decode_bulk_guarded_equals_scalar():
    # With a guard the bulk API falls back to per-step screening; the
    # contract (outputs equal the scalar loop) must hold there too.
    rng = np.random.default_rng(13)
    hq, hkv, d, steps = 8, 2, 64, 12
    q, k, v = _qkv(rng, hq, hkv, 128, d)
    config = TurboConfig()
    bits = np.full(hkv, 4, dtype=np.int32)
    res_a = turbo_prefill(q, k, v, config, bits)
    res_b = turbo_prefill(q, k, v, config, bits)
    qs = rng.standard_normal((steps, hq, d))
    ks = rng.standard_normal((steps, hkv, d))
    vs = rng.standard_normal((steps, hkv, d))
    bulk = turbo_decode_steps(
        qs, ks, vs, res_a.cache, res_a.buffer, config, guard=GuardConfig()
    )
    scalar = np.stack(
        [
            turbo_decode_step(
                qs[t], ks[t], vs[t], res_b.cache, res_b.buffer, config,
                guard=GuardConfig(),
            )
            for t in range(steps)
        ]
    )
    assert np.array_equal(bulk, scalar)

"""Differential determinism: seeded runs are byte-identical *as traces*.

PR 2 asserted determinism per consumer (metric equality on reruns).
With both loops driving :class:`repro.sim.EventScheduler`, the claim
strengthens and centralises: every scheduled/fired/cancelled event and
every request-lifecycle mark lands in a structured trace whose blake2b
digest must match across reruns — for the engine and the cluster, per
router × faults × admission × prefix.  A cross-loop test then pins the
two consumers to each other: an engine-only workload replayed under a
1-replica cluster produces the *same request-lifecycle event
subsequence*, timestamps included.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    ClusterSimulator,
    FaultConfig,
    FaultInjector,
)
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.overload import AdmissionConfig
from repro.prefix import PrefixCacheConfig, TenantConfig
from repro.serving import (
    EngineConfig,
    ServingEngine,
    poisson_workload,
    zipf_shared_workload,
)
from repro.serving.metrics import SLO
from repro.sim import ListTraceSink, diff_traces, format_diff, trace_digest

FAULTS = FaultConfig(
    seed=11, crash_rate=0.06, stall_rate=0.06,
    crash_downtime_s=8.0, stall_duration_s=6.0, stall_slowdown=4.0,
    request_timeout_s=40.0, max_retries=3, horizon_pad_s=15.0,
)

ADMISSION = AdmissionConfig(
    max_queue_depth=None,
    default_tenant=TenantConfig(
        tenant_id=0, rate_tokens_per_s=2_000.0, burst_tokens=20_000.0
    ),
)

PREFIX_ENGINE = EngineConfig(
    slo=SLO(), prefix=PrefixCacheConfig(), admission=ADMISSION
)


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


def workload(seed=12, n=30):
    return poisson_workload(
        n, arrival_rate=6.0, prompt_range=(256, 6144), gen_range=(64, 320),
        rng=np.random.default_rng(seed), n_sessions=24,
    )


def zipf(seed=21, n=50):
    return zipf_shared_workload(
        n, arrival_rate=10.0, n_tenants=40, zipf_s=1.6,
        rng=np.random.default_rng(seed),
    )


def run_once(model, faults=FAULTS, wl_seed=12, method="turbo_mixed", scaler=None):
    cfg = ClusterConfig(
        n_replicas=2, policy="least_kv", autoscaler=scaler, faults=faults
    )
    sink = ListTraceSink()
    sim = ClusterSimulator(model, METHODS[method], cfg, trace=sink)
    return sim, sim.run(workload(seed=wl_seed)), sink


# One cell per (router, faults?, admission?, prefix?) axis combination:
# every overload/caching subsystem that adds state to the event loop is
# exercised under at least one router, with and without faults.
CLUSTER_MATRIX = {
    "round_robin/plain": dict(policy="round_robin"),
    "round_robin/faults": dict(policy="round_robin", faults=FAULTS),
    "least_tokens/faults": dict(policy="least_tokens", faults=FAULTS),
    "least_kv/admission": dict(policy="least_kv", admission=ADMISSION),
    "least_kv/faults+admission": dict(
        policy="least_kv", faults=FAULTS, admission=ADMISSION
    ),
    "affinity/prefix": dict(policy="affinity", engine=PREFIX_ENGINE),
    "affinity/faults+prefix": dict(
        policy="affinity", faults=FAULTS, engine=PREFIX_ENGINE
    ),
}


class TestClusterTraceDigests:
    @pytest.mark.parametrize("cell", list(CLUSTER_MATRIX), ids=list(CLUSTER_MATRIX))
    def test_rerun_digest_is_byte_identical(self, model, cell):
        cfg = ClusterConfig(n_replicas=2, **CLUSTER_MATRIX[cell])
        prefixy = cfg.engine.prefix is not None
        requests = zipf(n=40) if prefixy else workload()

        def once():
            sink = ListTraceSink()
            metrics = ClusterSimulator(
                model, METHODS["turbo4"], cfg, trace=sink
            ).run(requests)
            return metrics, sink.records

        (ma, ra), (mb, rb) = once(), once()
        # The digest is the headline claim; on failure, diff_traces names
        # the first divergent event instead of a bare hash mismatch.
        assert trace_digest(ra) == trace_digest(rb), format_diff(
            diff_traces(ra, rb), "run_a", "run_b"
        )
        assert ma == mb
        assert ma.as_dict() == mb.as_dict()

    def test_same_seeds_reproduce_request_histories(self, model):
        """Not just traces: per-request retry/waste trails match too."""
        def trail(sim):
            records = dict(sim.failed)
            for replica in sim.replicas:
                records.update(replica.records)
            return {
                rid: (rec.status, rec.retries, rec.wasted_prefill_tokens,
                      rec.finished_at, rec.failed_at)
                for rid, rec in records.items()
            }

        sim_a, _, sink_a = run_once(model)
        sim_b, _, sink_b = run_once(model)
        assert trail(sim_a) == trail(sim_b)
        assert sink_a.digest() == sink_b.digest()

    def test_determinism_survives_autoscaling(self, model):
        scaler = AutoscalerConfig(min_replicas=2, max_replicas=5)
        _, a, sink_a = run_once(model, scaler=scaler)
        _, b, sink_b = run_once(model, scaler=scaler)
        assert a == b
        assert sink_a.digest() == sink_b.digest()
        # Scale decisions are trace marks, so the digests above already
        # cover them; the metric-level view agrees.
        assert [(e.time, e.action) for e in a.scale_events] == [
            (e.time, e.action) for e in b.scale_events
        ]
        assert any(r["ev"] == "scale_up" for r in sink_a.records)


class TestEngineTraceDigests:
    @pytest.mark.parametrize(
        "config",
        [EngineConfig(), PREFIX_ENGINE],
        ids=["plain", "prefix+admission"],
    )
    def test_engine_rerun_digest_is_byte_identical(self, model, config):
        def once():
            sink = ListTraceSink()
            metrics = ServingEngine(
                model, METHODS["turbo4"], config, trace=sink
            ).run(zipf(n=60))
            return metrics, sink.records

        (ma, ra), (mb, rb) = once(), once()
        assert trace_digest(ra) == trace_digest(rb), format_diff(
            diff_traces(ra, rb), "run_a", "run_b"
        )
        assert ma == mb
        assert repr(ma).encode() == repr(mb).encode()
        assert ma.as_dict() == mb.as_dict()


class TestCrossLoop:
    def test_engine_matches_one_replica_cluster_lifecycle(self, model):
        """The two consumers implement the same discrete-event semantics:
        an engine-only workload produces the identical request-lifecycle
        event subsequence (kind, label, *and* time) when the same engine
        runs as the lone replica of a cluster."""
        requests = workload(n=25)

        engine_sink = ListTraceSink()
        ServingEngine(model, METHODS["turbo4"], trace=engine_sink).run(requests)

        cluster_sink = ListTraceSink()
        ClusterSimulator(
            model,
            METHODS["turbo4"],
            ClusterConfig(n_replicas=1, policy="round_robin"),
            trace=cluster_sink,
        ).run(requests)

        def lifecycle(records, clock):
            return [
                (r["ev"], r["label"], r["t"])
                for r in records
                if r["action"] == "mark" and r["clock"] == clock
            ]

        engine_events = lifecycle(engine_sink.records, "engine")
        cluster_events = lifecycle(cluster_sink.records, "replica0")
        assert engine_events  # non-vacuous: submits/admits/finishes happened
        assert engine_events == cluster_events


class TestSeedsMatter:
    def test_different_fault_seed_different_timeline(self):
        horizon = 120.0
        a = FaultInjector(FAULTS).schedule(horizon)
        b = FaultInjector(replace(FAULTS, seed=FAULTS.seed + 1)).schedule(horizon)
        assert a != b
        assert [e.time for e in a] != [e.time for e in b]

    def test_fault_seeds_spread(self):
        """A handful of seeds produce a handful of distinct timelines."""
        timelines = {
            tuple((e.time, e.kind) for e in
                  FaultInjector(replace(FAULTS, seed=s)).schedule(100.0))
            for s in range(6)
        }
        assert len(timelines) == 6

    def test_different_fault_seed_different_run(self, model):
        _, a, sink_a = run_once(model, faults=FAULTS)
        _, b, sink_b = run_once(
            model, faults=replace(FAULTS, seed=FAULTS.seed + 1)
        )
        # The workload is identical; only the fault timeline moved.  The
        # traces diverge and the diff pinpoints where.
        assert sink_a.digest() != sink_b.digest()
        divergence = diff_traces(sink_a.records, sink_b.records)
        assert divergence is not None
        assert a.total == b.total
        assert (a.crashes, a.stalls, a.retries, a.wasted_prefill_tokens) != (
            b.crashes, b.stalls, b.retries, b.wasted_prefill_tokens
        )

    def test_different_workload_seed_different_run(self, model):
        _, a, sink_a = run_once(model, wl_seed=12)
        _, b, sink_b = run_once(model, wl_seed=13)
        assert a.as_dict() != b.as_dict()
        assert sink_a.digest() != sink_b.digest()

    def test_faults_off_is_the_clean_baseline(self, model):
        """faults=None equals a zero-rate schedule: no fault machinery in
        the clean path's results or its trace."""
        _, off, sink_off = run_once(model, faults=None)
        _, zero, sink_zero = run_once(
            model,
            faults=FaultConfig(seed=11, crash_rate=0.0, stall_rate=0.0),
        )
        assert off == zero
        assert sink_off.digest() == sink_zero.digest()
        assert off.crashes == off.retries == off.failed == 0

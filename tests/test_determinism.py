"""Reproducibility: seeded runs are byte-identical, seeds matter.

The cluster simulator's event loop resolves same-instant events in a
fixed order and draws every random choice from seeded generators, so a
(workload seed, fault seed) pair pins the entire run — metrics, fault
timeline, per-request retry history.  These tests pin that contract:
rerunning with the same seeds must reproduce results down to the byte,
and changing the fault seed must actually change the fault timeline.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    ClusterSimulator,
    FaultConfig,
    FaultInjector,
)
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.overload import AdmissionConfig
from repro.prefix import PrefixCacheConfig, TenantConfig
from repro.serving import (
    EngineConfig,
    ServingEngine,
    poisson_workload,
    zipf_shared_workload,
)
from repro.serving.metrics import SLO

FAULTS = FaultConfig(
    seed=11, crash_rate=0.06, stall_rate=0.06,
    crash_downtime_s=8.0, stall_duration_s=6.0, stall_slowdown=4.0,
    request_timeout_s=40.0, max_retries=3, horizon_pad_s=15.0,
)


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


def workload(seed=12, n=30):
    return poisson_workload(
        n, arrival_rate=6.0, prompt_range=(256, 6144), gen_range=(64, 320),
        rng=np.random.default_rng(seed), n_sessions=24,
    )


def run_once(model, faults=FAULTS, wl_seed=12, method="turbo_mixed", scaler=None):
    cfg = ClusterConfig(
        n_replicas=2, policy="least_kv", autoscaler=scaler, faults=faults
    )
    sim = ClusterSimulator(model, METHODS[method], cfg)
    return sim, sim.run(workload(seed=wl_seed))


class TestByteIdentical:
    def test_same_seeds_reproduce_metrics_exactly(self, model):
        _, a = run_once(model)
        _, b = run_once(model)
        # Dataclass equality covers every field including nested replica
        # stats and scale events; repr-bytes equality is the stricter
        # "byte-identical" form of the same claim.
        assert a == b
        assert repr(a).encode() == repr(b).encode()
        assert a.as_dict() == b.as_dict()

    def test_same_seeds_reproduce_request_histories(self, model):
        """Not just aggregates: per-request retry/waste trails match."""
        def trail(sim):
            records = dict(sim.failed)
            for replica in sim.replicas:
                records.update(replica.records)
            return {
                rid: (rec.status, rec.retries, rec.wasted_prefill_tokens,
                      rec.finished_at, rec.failed_at)
                for rid, rec in records.items()
            }

        sim_a, _ = run_once(model)
        sim_b, _ = run_once(model)
        assert trail(sim_a) == trail(sim_b)

    def test_determinism_survives_autoscaling(self, model):
        scaler = AutoscalerConfig(min_replicas=2, max_replicas=5)
        _, a = run_once(model, scaler=scaler)
        _, b = run_once(model, scaler=scaler)
        assert a == b
        assert [(e.time, e.action) for e in a.scale_events] == [
            (e.time, e.action) for e in b.scale_events
        ]


class TestPrefixReplay:
    """Prefix sharing, tenancy, and COW add pool state to every step —
    none of it may introduce nondeterminism."""

    ENGINE = EngineConfig(
        slo=SLO(),
        prefix=PrefixCacheConfig(),
        admission=AdmissionConfig(
            max_queue_depth=None,
            default_tenant=TenantConfig(
                tenant_id=0, rate_tokens_per_s=2_000.0, burst_tokens=20_000.0
            ),
        ),
    )

    def _zipf(self, seed=21, n=80):
        return zipf_shared_workload(
            n, arrival_rate=10.0, n_tenants=40, zipf_s=1.6,
            rng=np.random.default_rng(seed),
        )

    def test_engine_replay_is_byte_identical(self, model):
        runs = []
        for _ in range(2):
            engine = ServingEngine(model, METHODS["turbo4"], self.ENGINE)
            runs.append(engine.run(self._zipf()))
        a, b = runs
        assert a == b
        assert repr(a).encode() == repr(b).encode()
        assert a.as_dict() == b.as_dict()
        assert a.tenant_attainment == b.tenant_attainment

    def test_cluster_replay_with_prefix_and_faults(self, model):
        cfg = ClusterConfig(
            n_replicas=2, policy="affinity",
            engine=self.ENGINE, faults=FAULTS,
        )

        def once():
            sim = ClusterSimulator(model, METHODS["turbo4"], cfg)
            metrics = sim.run(self._zipf(n=60))
            pools = tuple(
                tuple(sorted(r.engine.prefix_pool._blocks))
                for r in sim.replicas
            )
            return metrics, pools

        (a, pools_a), (b, pools_b) = once(), once()
        assert a == b
        assert a.as_dict() == b.as_dict()
        # Even the resident cache contents (hash keys per replica) match.
        assert pools_a == pools_b


class TestSeedsMatter:
    def test_different_fault_seed_different_timeline(self):
        horizon = 120.0
        a = FaultInjector(FAULTS).schedule(horizon)
        b = FaultInjector(replace(FAULTS, seed=FAULTS.seed + 1)).schedule(horizon)
        assert a != b
        assert [e.time for e in a] != [e.time for e in b]

    def test_fault_seeds_spread(self):
        """A handful of seeds produce a handful of distinct timelines."""
        timelines = {
            tuple((e.time, e.kind) for e in
                  FaultInjector(replace(FAULTS, seed=s)).schedule(100.0))
            for s in range(6)
        }
        assert len(timelines) == 6

    def test_different_fault_seed_different_run(self, model):
        _, a = run_once(model, faults=FAULTS)
        _, b = run_once(model, faults=replace(FAULTS, seed=FAULTS.seed + 1))
        # The workload is identical; only the fault timeline moved.  The
        # fault accounting must reflect that.
        assert a.total == b.total
        assert (a.crashes, a.stalls, a.retries, a.wasted_prefill_tokens) != (
            b.crashes, b.stalls, b.retries, b.wasted_prefill_tokens
        )

    def test_different_workload_seed_different_run(self, model):
        _, a = run_once(model, wl_seed=12)
        _, b = run_once(model, wl_seed=13)
        assert a.as_dict() != b.as_dict()

    def test_faults_off_is_the_clean_baseline(self, model):
        """faults=None equals a zero-rate schedule: no fault machinery in
        the clean path's results."""
        _, off = run_once(model, faults=None)
        _, zero = run_once(
            model,
            faults=FaultConfig(seed=11, crash_rate=0.0, stall_rate=0.0),
        )
        assert off == zero
        assert off.crashes == off.retries == off.failed == 0

"""Tests for the integer GEMM and its scale algebra (Eq. 5/6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.integer_gemm import int_matmul, scaled_int_matmul
from repro.quant.schemes import (
    dequantize_asymmetric,
    dequantize_symmetric,
    quantize_asymmetric,
    quantize_symmetric,
)


class TestIntMatmul:
    def test_exact(self, rng):
        a = rng.integers(-127, 128, size=(8, 16)).astype(np.int8)
        b = rng.integers(-127, 128, size=(16, 4)).astype(np.int8)
        out = int_matmul(a, b)
        np.testing.assert_array_equal(out, a.astype(np.int64) @ b.astype(np.int64))
        assert out.dtype == np.int32

    def test_batched(self, rng):
        a = rng.integers(-10, 10, size=(3, 8, 16)).astype(np.int8)
        b = rng.integers(-10, 10, size=(3, 16, 4)).astype(np.int8)
        out = int_matmul(a, b)
        assert out.shape == (3, 8, 4)

    def test_broadcast(self, rng):
        a = rng.integers(-10, 10, size=(2, 5, 8, 16)).astype(np.int8)
        b = rng.integers(-10, 10, size=(2, 1, 16, 4)).astype(np.int8)
        out = int_matmul(a, b)
        assert out.shape == (2, 5, 8, 4)

    def test_rejects_floats(self, rng):
        with pytest.raises(TypeError):
            int_matmul(rng.standard_normal((4, 4)), np.ones((4, 4), dtype=np.int8))

    def test_overflow_guard(self):
        a = np.full((1, 200_000), 127, dtype=np.int32)
        b = np.full((200_000, 1), 127, dtype=np.int32)
        with pytest.raises(OverflowError):
            int_matmul(a, b)

    @given(
        hnp.arrays(np.int64, (4, 8), elements=st.integers(-127, 127)),
        hnp.arrays(np.int64, (8, 3), elements=st.integers(-127, 127)),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_python_ints(self, a, b):
        out = int_matmul(a, b)
        expected = np.array(
            [[sum(int(a[i, k]) * int(b[k, j]) for k in range(8)) for j in range(3)] for i in range(4)]
        )
        np.testing.assert_array_equal(out, expected)


class TestScaledIntMatmul:
    def test_symmetric_equals_dequantized_float(self, rng):
        """Eq. 6: the integer path with scalar scales is bit-exact to the
        float product of the dequantized operands."""
        a = rng.standard_normal((8, 32))
        b = rng.standard_normal((32, 8))
        ac, asc = quantize_symmetric(a, bits=8)
        bc, bsc = quantize_symmetric(b, bits=8)
        out = scaled_int_matmul(ac, asc, bc, bsc)
        expected = dequantize_symmetric(ac, asc) @ dequantize_symmetric(bc, bsc)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_symmetric_close_to_true_product(self, rng):
        a = rng.standard_normal((8, 64))
        b = rng.standard_normal((64, 8))
        ac, asc = quantize_symmetric(a, bits=8)
        bc, bsc = quantize_symmetric(b, bits=8)
        out = scaled_int_matmul(ac, asc, bc, bsc)
        rel = np.linalg.norm(out - a @ b) / np.linalg.norm(a @ b)
        assert rel < 0.02

    def test_per_row_and_column_scales(self, rng):
        a = rng.standard_normal((8, 32)) * rng.uniform(0.5, 5, size=(8, 1))
        b = rng.standard_normal((32, 6)) * rng.uniform(0.5, 5, size=(1, 6))
        ac, asc = quantize_symmetric(a, bits=8, axis=-1)  # (8, 1)
        bc, bsc = quantize_symmetric(b, bits=8, axis=-2)  # (1, 6)
        out = scaled_int_matmul(ac, asc, bc, bsc)
        expected = dequantize_symmetric(ac, asc) @ dequantize_symmetric(bc, bsc)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_asymmetric_b_term(self, rng):
        """Eq. 5 with a zero-point on B reproduces the dequantized product."""
        a = rng.standard_normal((4, 16))
        b = rng.standard_normal((16, 4)) + 2.0
        ac, asc = quantize_symmetric(a, bits=8)
        bc, bsc, bz = quantize_asymmetric(b, bits=8)
        out = scaled_int_matmul(ac, asc, bc.astype(np.int32), bsc, b_zero=bz)
        expected = dequantize_symmetric(ac, asc) @ dequantize_asymmetric(bc, bsc, bz)
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_asymmetric_both_terms(self, rng):
        a = rng.standard_normal((4, 16)) - 1.5
        b = rng.standard_normal((16, 4)) + 2.0
        ac, asc, az = quantize_asymmetric(a, bits=8)
        bc, bsc, bz = quantize_asymmetric(b, bits=8)
        out = scaled_int_matmul(
            ac.astype(np.int32), asc, bc.astype(np.int32), bsc, a_zero=az, b_zero=bz
        )
        expected = dequantize_asymmetric(ac, asc, az) @ dequantize_asymmetric(bc, bsc, bz)
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_symmetric_has_no_correction_terms(self, rng):
        """With z = 0 the asymmetric formula degenerates to Eq. 6."""
        a = rng.standard_normal((4, 16))
        b = rng.standard_normal((16, 4))
        ac, asc = quantize_symmetric(a, bits=8)
        bc, bsc = quantize_symmetric(b, bits=8)
        plain = scaled_int_matmul(ac, asc, bc, bsc)
        with_zeros = scaled_int_matmul(
            ac, asc, bc, bsc, a_zero=np.zeros(1), b_zero=np.zeros(1)
        )
        np.testing.assert_allclose(plain, with_zeros, rtol=1e-12)

"""Tests for the cluster subsystem: TP costs, routing, scaling, SLOs."""

import numpy as np
import pytest

from repro.cluster import (
    SLO,
    AutoscalerConfig,
    Autoscaler,
    ClusterConfig,
    ClusterSimulator,
    FaultConfig,
    FaultInjector,
    ROUTER_POLICIES,
    Replica,
    make_router,
)
from repro.overload import AdmissionConfig, BreakerConfig
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry, e2e_step_latency
from repro.perf.gpu import A100_80GB
from repro.perf.tp import (
    allreduce_bytes_per_layer,
    replica_kv_budget,
    shard_counts,
    tp_step_latency,
)
from repro.perf.counts import OpCounts
from repro.serving import EngineConfig, Request, poisson_workload
from repro.serving.request import RequestStatus


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


def bursty_workload(n=60, rate=6.0, seed=12):
    return poisson_workload(
        n, arrival_rate=rate, prompt_range=(256, 6144), gen_range=(64, 320),
        rng=np.random.default_rng(seed), n_sessions=24,
    )


class TestTensorParallelCosts:
    def test_allreduce_zero_for_one_rank(self):
        assert A100_80GB.allreduce_time(1e6, 1) == 0.0

    def test_allreduce_grows_with_ranks_at_fixed_bytes(self):
        times = [A100_80GB.allreduce_time(1e6, r) for r in (2, 4, 8)]
        assert times[0] < times[1] < times[2]  # latency term dominates growth

    def test_shard_counts_preserves_launch_overhead(self):
        c = OpCounts(fp16_tc=1e12, bytes_read=1e9, kernel_launches=10)
        s = shard_counts(c, 4)
        assert s.fp16_tc == pytest.approx(2.5e11)
        assert s.bytes_read == pytest.approx(2.5e8)
        assert s.kernel_launches == 10

    def test_tp1_matches_e2e(self, model):
        for prefill, (b, q, kv) in ((False, (8, 1, 4096)), (True, (1, 2048, 2048))):
            assert tp_step_latency(
                METHODS["turbo_mixed"], model, b, q, kv, prefill, tp=1
            ) == e2e_step_latency(METHODS["turbo_mixed"], model, b, q, kv, prefill)

    def test_latency_decreases_then_saturates(self, model):
        lats = [
            tp_step_latency(METHODS["fp16"], model, 8, 1, 8192, False, tp=tp)
            for tp in (1, 2, 4, 8)
        ]
        # Monotone decrease...
        assert lats[0] > lats[1] > lats[2] >= lats[3]
        # ...but sublinear: 8 GPUs buy nowhere near 8x.
        assert lats[3] > lats[0] / 8 * 2
        # And the marginal gain shrinks (saturation).
        assert (lats[2] - lats[3]) < (lats[0] - lats[1]) / 2

    def test_allreduce_bytes_scale_with_tokens(self, model):
        assert allreduce_bytes_per_layer(model, 2, 64) == pytest.approx(
            4 * allreduce_bytes_per_layer(model, 1, 32)
        )

    def test_replica_kv_budget_pools_hbm(self, model):
        b1 = replica_kv_budget(model, tp=1)
        b4 = replica_kv_budget(model, tp=4)
        # Pooling 4 HBMs more than quadruples KV space: the weight shard
        # per rank shrinks.
        assert b4 > 4 * b1

    def test_invalid_tp_rejected(self, model):
        with pytest.raises(ValueError):
            tp_step_latency(METHODS["fp16"], model, 1, 1, 128, False, tp=0)
        with pytest.raises(ValueError):
            replica_kv_budget(model, tp=0)

    def test_tp_replica_serves_faster(self, model):
        """A tp=4 replica finishes the same closed workload sooner."""
        from repro.serving import ServingEngine
        from repro.serving.workload import closed_batch_workload

        reqs = closed_batch_workload(16, prompt_len=1024, gen_len=64)
        one = ServingEngine(model, METHODS["turbo_mixed"], EngineConfig(tp=1)).run(reqs)
        four = ServingEngine(model, METHODS["turbo_mixed"], EngineConfig(tp=4)).run(reqs)
        assert four.completed == one.completed == 16
        assert four.makespan < one.makespan


class TestRouters:
    def _replicas(self, model, n=3, method="turbo_mixed"):
        return [
            Replica(i, model, METHODS[method], EngineConfig()) for i in range(n)
        ]

    def _req(self, rid, session=0):
        return Request(rid, 0.0, prompt_len=512, gen_len=32, session_id=session)

    def test_registry_complete(self):
        assert set(ROUTER_POLICIES) == {
            "round_robin", "least_tokens", "least_kv", "affinity"
        }
        for name in ROUTER_POLICIES:
            assert make_router(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_router("random")

    def test_round_robin_cycles(self, model):
        replicas = self._replicas(model)
        router = make_router("round_robin")
        chosen = [router.choose(self._req(i), replicas).replica_id for i in range(6)]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_least_tokens_picks_idle_replica(self, model):
        replicas = self._replicas(model)
        replicas[0].submit(self._req(100))
        replicas[1].submit(self._req(101))
        router = make_router("least_tokens")
        assert router.choose(self._req(0), replicas).replica_id == 2

    def test_least_kv_picks_lowest_pressure(self, model):
        replicas = self._replicas(model)
        replicas[2].submit(self._req(100))
        replicas[2].step()  # admit: resident KV, not just queued demand
        replicas[0].submit(self._req(101))
        router = make_router("least_kv")
        assert router.choose(self._req(0), replicas).replica_id == 1

    def test_affinity_pins_sessions(self, model):
        replicas = self._replicas(model)
        router = make_router("affinity")
        a = [router.choose(self._req(i, session=5), replicas).replica_id
             for i in range(4)]
        assert len(set(a)) == 1  # one session -> one replica
        assert router.choose(self._req(9, session=6), replicas).replica_id != a[0]

    def test_affinity_spills_when_home_overloaded(self, model):
        replicas = self._replicas(model)
        router = make_router("affinity")
        home = router.choose(self._req(0, session=5), replicas)
        for i in range(20):  # flood the home queue past the spill threshold
            home.submit(self._req(100 + i))
        spilled = router.choose(self._req(1, session=5), replicas)
        assert spilled.replica_id != home.replica_id

    def test_empty_replica_set_rejected(self, model):
        with pytest.raises(ValueError):
            make_router("round_robin").choose(self._req(0), [])


class TestAutoscaler:
    def test_scales_up_on_queue_pressure(self, model):
        scaler = Autoscaler(AutoscalerConfig(scale_up_queue=2.0))
        replicas = [Replica(0, model, METHODS["turbo_mixed"], EngineConfig())]
        for i in range(5):
            replicas[0].submit(Request(i, 0.0, 512, 32))
        assert scaler.decide(0.0, replicas) == "up"

    def test_scales_down_when_idle(self, model):
        scaler = Autoscaler(AutoscalerConfig(min_replicas=1))
        replicas = [
            Replica(i, model, METHODS["turbo_mixed"], EngineConfig())
            for i in range(2)
        ]
        assert scaler.decide(100.0, replicas) == "down"

    def test_respects_min_and_max(self, model):
        cfg = AutoscalerConfig(min_replicas=1, max_replicas=1, scale_up_queue=0.5)
        scaler = Autoscaler(cfg)
        replicas = [Replica(0, model, METHODS["turbo_mixed"], EngineConfig())]
        for i in range(5):
            replicas[0].submit(Request(i, 0.0, 512, 32))
        assert scaler.decide(0.0, replicas) is None  # at max already
        assert scaler.decide(50.0, [replicas[0]]) is None  # busy, at min

    def test_cooldown_blocks_consecutive_actions(self, model):
        scaler = Autoscaler(AutoscalerConfig(scale_up_queue=1.0, cooldown_s=30.0))
        replicas = [Replica(0, model, METHODS["turbo_mixed"], EngineConfig())]
        for i in range(5):
            replicas[0].submit(Request(i, 0.0, 512, 32))
        assert scaler.decide(0.0, replicas) == "up"
        assert scaler.decide(10.0, replicas) is None  # inside cooldown
        assert scaler.decide(31.0, replicas) == "up"

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_queue=1.0, scale_down_queue=2.0)

    def test_cluster_scales_up_and_down(self, model):
        """End-to-end: a burst adds replicas, the lull drains one."""
        burst = [Request(i, 0.01 * i, 1024, 96) for i in range(40)]
        tail = [Request(100 + i, 200.0 + 5.0 * i, 256, 16) for i in range(8)]
        config = ClusterConfig(
            n_replicas=1,
            policy="least_tokens",
            autoscaler=AutoscalerConfig(
                min_replicas=1, max_replicas=4,
                scale_up_queue=4.0, scale_down_queue=0.25, cooldown_s=5.0,
            ),
        )
        m = ClusterSimulator(model, METHODS["fp16"], config).run(burst + tail)
        assert m.completed == m.total == 48
        actions = [e.action for e in m.scale_events]
        assert "up" in actions and "down" in actions
        assert m.peak_replicas > 1
        assert m.final_replicas < m.peak_replicas


class TestClusterSimulator:
    def test_conservation_every_request_finishes_once(self, model):
        """No request is lost, duplicated, or left unfinished."""
        wl = bursty_workload(n=50)
        for policy in ROUTER_POLICIES:
            sim = ClusterSimulator(
                model, METHODS["turbo_mixed"],
                ClusterConfig(n_replicas=3, policy=policy),
            )
            metrics = sim.run(wl)
            seen = {}
            for replica in sim.replicas:
                for rid, rec in replica.records.items():
                    assert rid not in seen, f"request {rid} on two replicas"
                    seen[rid] = rec
            assert set(seen) == {r.request_id for r in wl}
            assert all(
                rec.status is RequestStatus.FINISHED for rec in seen.values()
            )
            assert metrics.completed == metrics.total == len(wl)

    def test_deterministic(self, model):
        wl = bursty_workload(n=30)
        cfg = ClusterConfig(n_replicas=3, policy="least_kv")
        a = ClusterSimulator(model, METHODS["kivi4"], cfg).run(wl)
        b = ClusterSimulator(model, METHODS["kivi4"], cfg).run(wl)
        assert a.as_dict() == b.as_dict()

    def test_more_replicas_cut_tail_latency(self, model):
        wl = bursty_workload(n=40)
        one = ClusterSimulator(
            model, METHODS["fp16"], ClusterConfig(n_replicas=1)
        ).run(wl)
        four = ClusterSimulator(
            model, METHODS["fp16"], ClusterConfig(n_replicas=4)
        ).run(wl)
        assert four.p99_ttft < one.p99_ttft
        assert four.goodput_rps >= one.goodput_rps

    def test_kv_aware_routing_beats_round_robin_tail(self, model):
        """The harness acceptance claim, pinned on the bursty workload."""
        wl = bursty_workload(n=60)
        by_policy = {}
        for policy in ("round_robin", "least_kv"):
            by_policy[policy] = ClusterSimulator(
                model, METHODS["fp16"], ClusterConfig(n_replicas=3, policy=policy)
            ).run(wl)
        assert (
            by_policy["least_kv"].p99_ttft <= by_policy["round_robin"].p99_ttft
        )

    def test_turbo_admits_more_concurrency_than_fp16(self, model):
        """Equal HBM budget: compression -> higher admitted batch."""
        wl = bursty_workload(n=60)
        peaks = {}
        for method in ("fp16", "turbo_mixed"):
            m = ClusterSimulator(
                model, METHODS[method], ClusterConfig(n_replicas=3)
            ).run(wl)
            peaks[method] = max(s.peak_running for s in m.replicas)
        assert peaks["turbo_mixed"] > 2 * peaks["fp16"]

    def test_slo_accounting(self, model):
        wl = poisson_workload(20, arrival_rate=2.0, rng=np.random.default_rng(3))
        strict = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, slo=SLO(ttft_s=1e-6, tpot_s=1e-6)),
        ).run(wl)
        loose = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, slo=SLO(ttft_s=1e6, tpot_s=1e6)),
        ).run(wl)
        assert strict.completed == loose.completed == 20
        assert strict.slo_attainment == 0.0 and strict.goodput_rps == 0.0
        assert loose.slo_attainment == 1.0
        assert loose.goodput_rps == pytest.approx(20 / loose.makespan)

    def test_makespan_covers_all_replicas(self, model):
        wl = bursty_workload(n=30)
        sim = ClusterSimulator(
            model, METHODS["turbo_mixed"], ClusterConfig(n_replicas=3)
        )
        m = sim.run(wl)
        assert m.makespan == pytest.approx(
            max(r.clock for r in sim.replicas if r.records)
        )

    def test_invalid_config_rejected(self, model):
        with pytest.raises(ValueError):
            ClusterConfig(n_replicas=0)
        with pytest.raises(ValueError):
            SLO(ttft_s=0.0)

    def test_draining_replica_rejects_submissions(self, model):
        replica = Replica(0, model, METHODS["turbo_mixed"], EngineConfig())
        replica.draining = True
        with pytest.raises(RuntimeError):
            replica.submit(Request(0, 0.0, 128, 8))


FAULTS = FaultConfig(
    seed=3, crash_rate=0.05, stall_rate=0.05,
    crash_downtime_s=8.0, stall_duration_s=6.0, stall_slowdown=4.0,
    request_timeout_s=45.0, max_retries=3, horizon_pad_s=15.0,
)


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(FAULTS).schedule(120.0)
        b = FaultInjector(FAULTS).schedule(120.0)
        assert a == b and len(a) > 0

    def test_different_seeds_differ(self):
        from dataclasses import replace as dreplace

        a = FaultInjector(FAULTS).schedule(120.0)
        b = FaultInjector(dreplace(FAULTS, seed=FAULTS.seed + 1)).schedule(120.0)
        assert a != b

    def test_kinds_have_independent_streams(self):
        """Silencing one fault kind leaves the other kind's timeline intact."""
        from dataclasses import replace as dreplace

        both = FaultInjector(FAULTS).schedule(120.0)
        only_crash = FaultInjector(dreplace(FAULTS, stall_rate=0.0)).schedule(120.0)
        assert only_crash == [e for e in both if e.kind == "crash"]

    def test_schedule_respects_horizon_and_order(self):
        events = FaultInjector(FAULTS).schedule(80.0)
        assert all(0.0 < e.time < 80.0 for e in events)
        assert [e.time for e in events] == sorted(e.time for e in events)
        assert {e.kind for e in events} <= {"crash", "stall"}

    def test_zero_rates_mean_no_faults(self):
        assert FaultInjector(FaultConfig(seed=1)).schedule(1e4) == []

    def test_backoff_is_capped_exponential(self):
        cfg = FaultConfig(backoff_base_s=0.5, backoff_cap_s=4.0)
        assert [cfg.backoff(k) for k in (1, 2, 3, 4, 5)] == [
            0.5, 1.0, 2.0, 4.0, 4.0
        ]
        with pytest.raises(ValueError):
            cfg.backoff(0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_rate=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(stall_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultConfig(request_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)
        with pytest.raises(ValueError):
            FaultConfig(backoff_base_s=2.0, backoff_cap_s=1.0)
        with pytest.raises(ValueError):
            FaultConfig(crash_downtime_s=0.0)


class TestReplicaFaults:
    def _replica(self, model):
        return Replica(0, model, METHODS["turbo_mixed"], EngineConfig())

    def test_crash_evicts_everything(self, model):
        replica = self._replica(model)
        for i in range(4):
            replica.submit(Request(i, 0.0, 512, 32))
        replica.step()  # admit some into the running batch
        evicted = replica.crash(down_until=10.0)
        assert {rec.request.request_id for rec in evicted} == {0, 1, 2, 3}
        assert replica.crashed and not replica.dispatchable
        assert not replica.busy and not replica.records
        with pytest.raises(RuntimeError):
            replica.submit(Request(9, 0.0, 128, 8))
        with pytest.raises(RuntimeError):
            replica.crash(down_until=20.0)  # already down

    def test_recover_restores_service_at_now(self, model):
        replica = self._replica(model)
        replica.crash(down_until=10.0)
        replica.recover(10.0)
        assert replica.dispatchable and replica.clock == 10.0
        replica.submit(Request(0, 10.0, 128, 8))
        while replica.busy:
            replica.step()
        assert replica.records[0].status is RequestStatus.FINISHED

    def test_stall_slows_steps_until_cleared(self, model):
        def makespan(stalled):
            replica = self._replica(model)
            if stalled:
                replica.stall(4.0)
            replica.submit(Request(0, 0.0, 1024, 32))
            while replica.busy:
                replica.step()
            return replica.clock

        slow, fast = makespan(True), makespan(False)
        assert slow == pytest.approx(4.0 * fast)

        replica = self._replica(model)
        replica.stall(4.0)
        replica.clear_stall()
        replica.submit(Request(0, 0.0, 1024, 32))
        while replica.busy:
            replica.step()
        assert replica.clock == pytest.approx(fast)

    def test_stalls_do_not_stack_downwards(self, model):
        """A second, milder stall never speeds up an already-stalled replica."""
        replica = self._replica(model)
        replica.stall(4.0)
        replica.stall(2.0)
        assert replica.engine.time_scale == 4.0

    def test_cancel_returns_record_and_frees_kv(self, model):
        replica = self._replica(model)
        replica.submit(Request(0, 0.0, 512, 32))
        replica.step()
        rec = replica.cancel(0)
        assert rec is not None and rec.request.request_id == 0
        assert not replica.busy and not replica.records
        assert replica.cancel(0) is None  # unknown rid now


class TestClusterFaults:
    def test_conservation_matrix(self, model):
        """Every policy x autoscaler x fault schedule terminates every
        request exactly once — completed on one replica or failed."""
        wl = bursty_workload(n=30)
        scaler = AutoscalerConfig(min_replicas=2, max_replicas=4)
        for policy in ROUTER_POLICIES:
            for autoscaler in (None, scaler):
                for faults in (None, FAULTS):
                    sim = ClusterSimulator(
                        model, METHODS["turbo_mixed"],
                        ClusterConfig(
                            n_replicas=2, policy=policy,
                            autoscaler=autoscaler, faults=faults,
                        ),
                    )
                    m = sim.run(wl)
                    label = f"{policy}/scale={bool(autoscaler)}/faults={bool(faults)}"
                    seen = dict(sim.failed)
                    for replica in sim.replicas:
                        for rid, rec in replica.records.items():
                            assert rid not in seen, f"{label}: rid {rid} twice"
                            seen[rid] = rec
                    assert set(seen) == {r.request_id for r in wl}, label
                    for rec in seen.values():
                        assert rec.status in (
                            RequestStatus.FINISHED, RequestStatus.FAILED
                        ), label
                    assert m.completed + m.failed == m.total == len(wl), label
                    if faults is None:
                        assert m.failed == 0 and m.retries == 0, label
                        assert m.crashes == m.stalls == m.timeouts == 0, label

    def test_crashes_cost_retries_and_reprefill(self, model):
        m = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, policy="least_kv", faults=FAULTS),
        ).run(bursty_workload(n=40))
        assert m.crashes > 0
        assert m.retries > 0
        assert m.wasted_prefill_tokens > 0
        assert m.downtime_s == pytest.approx(m.crashes * FAULTS.crash_downtime_s)
        assert 0.0 < m.availability < 1.0

    def test_healthy_run_reports_full_availability(self, model):
        m = ClusterSimulator(
            model, METHODS["turbo_mixed"], ClusterConfig(n_replicas=2)
        ).run(bursty_workload(n=20))
        assert m.availability == 1.0 and m.failed_rate == 0.0

    def test_exhausted_retry_budget_fails_requests(self, model):
        """A zero-retry budget under heavy crashes converts evictions into
        FAILED requests instead of crashing or hanging the run."""
        harsh = FaultConfig(
            seed=5, crash_rate=0.2, crash_downtime_s=20.0,
            request_timeout_s=5.0, max_retries=0, horizon_pad_s=30.0,
        )
        sim = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, policy="least_kv", faults=harsh),
        )
        m = sim.run(bursty_workload(n=30))
        assert m.failed > 0
        assert m.completed + m.failed == m.total == 30
        for rec in sim.failed.values():
            assert rec.status is RequestStatus.FAILED
            assert rec.retries > harsh.max_retries
            assert rec.failed_at is not None

    def test_timeouts_pull_back_stuck_requests(self, model):
        """A tight TTFT deadline fires timeouts; a loose one never does."""
        from dataclasses import replace as dreplace

        wl = bursty_workload(n=30)
        tight = dreplace(FAULTS, request_timeout_s=4.0, max_retries=8)
        loose = dreplace(FAULTS, request_timeout_s=1e6)

        def run(faults):
            return ClusterSimulator(
                model, METHODS["fp16"],
                ClusterConfig(n_replicas=2, policy="least_kv", faults=faults),
            ).run(wl)

        assert run(tight).timeouts > 0
        assert run(loose).timeouts == 0

    def test_autoscaler_replaces_crashed_replicas(self, model):
        """A fleet crashed below its floor is topped back up immediately,
        cooldown notwithstanding."""
        scaler = Autoscaler(AutoscalerConfig(min_replicas=2, cooldown_s=1e9))
        replicas = [
            Replica(i, model, METHODS["turbo_mixed"], EngineConfig())
            for i in range(2)
        ]
        assert scaler.decide(0.0, replicas) is None  # healthy: no action
        assert scaler.decide(1.0, replicas[:1]) == "up"  # below floor
        assert scaler.decide(2.0, replicas[:1]) == "up"  # still, despite cooldown

    def test_cluster_heals_through_autoscaler(self, model):
        cfg = ClusterConfig(
            n_replicas=2, policy="least_kv",
            autoscaler=AutoscalerConfig(min_replicas=2, max_replicas=5),
            faults=FAULTS,
        )
        sim = ClusterSimulator(model, METHODS["turbo_mixed"], cfg)
        m = sim.run(bursty_workload(n=40))
        assert m.crashes > 0
        assert any(e.action == "up" for e in m.scale_events)
        assert m.completed + m.failed == m.total

    def test_fault_metrics_round_trip_as_dict(self, model):
        m = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, faults=FAULTS),
        ).run(bursty_workload(n=20))
        d = m.as_dict()
        for key in (
            "failed", "failed_rate", "retries", "wasted_prefill_tokens",
            "wasted_decode_tokens", "crashes", "stalls", "timeouts",
            "downtime_s", "availability",
        ):
            assert key in d
        assert d["failed"] + d["completed"] == d["total"]


class TestClusterOverload:
    """Cluster-level admission control and circuit breakers."""

    ADMISSION = AdmissionConfig(
        rate_tokens_per_s=2_000.0, burst_tokens=8_000.0,
        max_queue_depth=6, max_defers=2,
    )

    def test_conservation_matrix_with_admission(self, model):
        """Every policy x faults x admission cell terminates every request
        exactly once: completed + failed + rejected + shed == submitted."""
        wl = bursty_workload(n=30, rate=12.0)
        for policy in ROUTER_POLICIES:
            for faults in (None, FAULTS):
                for admission in (None, self.ADMISSION):
                    sim = ClusterSimulator(
                        model, METHODS["turbo_mixed"],
                        ClusterConfig(
                            n_replicas=2, policy=policy,
                            faults=faults, admission=admission,
                        ),
                    )
                    m = sim.run(wl)
                    label = (
                        f"{policy}/faults={bool(faults)}"
                        f"/admission={bool(admission)}"
                    )
                    seen = dict(sim.failed)
                    seen.update(sim.rejected)
                    for replica in sim.replicas:
                        for rid, rec in replica.records.items():
                            assert rid not in seen, f"{label}: rid {rid} twice"
                            seen[rid] = rec
                    assert set(seen) == {r.request_id for r in wl}, label
                    terminal = (
                        RequestStatus.FINISHED, RequestStatus.FAILED,
                        RequestStatus.REJECTED, RequestStatus.SHED,
                    )
                    for rec in seen.values():
                        assert rec.status in terminal, label
                    assert (
                        m.completed + m.failed + m.rejected + m.shed
                        == m.total == len(wl)
                    ), label
                    if admission is None:
                        assert m.rejected == 0 and m.shed == 0, label

    def test_admission_rejects_under_pressure_and_is_deterministic(self, model):
        wl = bursty_workload(n=40, rate=20.0)
        cfg = ClusterConfig(
            n_replicas=2, policy="least_kv", admission=self.ADMISSION,
        )
        a = ClusterSimulator(model, METHODS["turbo_mixed"], cfg).run(wl)
        b = ClusterSimulator(model, METHODS["turbo_mixed"], cfg).run(wl)
        assert a.rejected > 0
        assert a.as_dict() == b.as_dict()
        for rec in ClusterSimulator(model, METHODS["turbo_mixed"], cfg).rejected.values():
            assert rec.outcome_reason is not None

    def test_rejected_records_carry_reasons(self, model):
        wl = bursty_workload(n=40, rate=20.0)
        sim = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, admission=self.ADMISSION),
        )
        m = sim.run(wl)
        assert m.rejected == len(sim.rejected) > 0
        for rec in sim.rejected.values():
            assert rec.status is RequestStatus.REJECTED
            assert rec.rejected_at is not None
            assert rec.outcome_reason is not None

    def test_breaker_trips_on_timeout_storm(self, model):
        from dataclasses import replace as dreplace

        wl = bursty_workload(n=30)
        tight = dreplace(FAULTS, request_timeout_s=4.0, max_retries=8)
        sim = ClusterSimulator(
            model, METHODS["fp16"],
            ClusterConfig(
                n_replicas=2, policy="least_kv", faults=tight,
                breaker=BreakerConfig(failure_threshold=2, open_duration_s=10.0),
            ),
        )
        m = sim.run(wl)
        assert m.timeouts > 0
        assert m.breaker_trips > 0
        assert sum(b.trips for b in sim.breakers.values()) == m.breaker_trips
        assert m.completed + m.failed + m.rejected + m.shed == m.total == 30

    def test_breaker_does_not_change_healthy_run(self, model):
        wl = bursty_workload(n=25)
        plain = ClusterSimulator(
            model, METHODS["turbo_mixed"], ClusterConfig(n_replicas=2)
        ).run(wl)
        guarded = ClusterSimulator(
            model, METHODS["turbo_mixed"],
            ClusterConfig(n_replicas=2, breaker=BreakerConfig()),
        ).run(wl)
        assert guarded.breaker_trips == 0
        assert guarded.as_dict() == plain.as_dict()

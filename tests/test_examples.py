"""Smoke tests: the shipped examples run end-to-end.

The slow, flag-less example (reasoning_eval) is exercised through its
underlying harness elsewhere; here we run everything that finishes in
seconds, with shrunken CLI arguments where supported.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv=()):
    old_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "compression" in out

    def test_long_context_serving(self, capsys):
        _run("long_context_serving.py")
        out = capsys.readouterr().out
        assert "OOM" in out and "Max throughput" in out

    def test_cache_persistence(self, capsys):
        _run("cache_persistence.py")
        out = capsys.readouterr().out
        assert "identical: True" in out

    def test_kernel_engineering(self, capsys):
        _run("kernel_engineering.py")
        out = capsys.readouterr().out
        assert "Roofline" in out and "identical to the kernel: True" in out

    def test_llm_generation_small(self, capsys):
        _run("llm_generation.py", ["--tokens", "8"])
        out = capsys.readouterr().out
        assert "Generation fidelity" in out

    def test_serving_simulation_small(self, capsys):
        _run("serving_simulation.py", ["--requests", "12", "--rate", "5"])
        out = capsys.readouterr().out
        assert "Open-system serving comparison" in out

    def test_cluster_serving_small(self, capsys):
        _run("cluster_serving.py", ["--requests", "16", "--rate", "5"])
        out = capsys.readouterr().out
        assert "Tensor parallelism" in out
        assert "Load-aware routing" in out
        assert "worth GPUs" in out

    def test_fault_tolerance_small(self, capsys):
        _run("fault_tolerance.py", ["--requests", "20", "--rate", "5"])
        out = capsys.readouterr().out
        assert "seeded fault timeline" in out
        assert "Retry budget sweep" in out
        assert "identical fault schedule" in out

    def test_multi_tenant_serving_small(self, capsys):
        _run("multi_tenant_serving.py", ["--requests", "120", "--tenants", "60"])
        out = capsys.readouterr().out
        assert "Content-addressed sharing" in out
        assert "sharing wins TTFT" in out
        assert "pool audit after run" in out and "clean" in out
        assert "Jain fairness" in out

    def test_headwise_tuning(self, capsys):
        _run("headwise_tuning.py")
        out = capsys.readouterr().out
        assert "priority" in out

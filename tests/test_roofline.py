"""Tests for the roofline classifier."""

import pytest

from repro.perf.attention_costs import METHODS, AttentionGeometry, attention_latency
from repro.perf.roofline import roofline


@pytest.fixture
def decode_geom():
    return AttentionGeometry(4, 40, 10, 128, 1, 8192)


@pytest.fixture
def prefill_geom():
    return AttentionGeometry(4, 40, 10, 128, 8192, 8192)


class TestClassification:
    def test_fp16_decode_memory_bound(self, decode_geom):
        p = roofline(METHODS["fp16"], decode_geom, prefill=False)
        assert p.bound == "memory"
        assert p.arithmetic_intensity < 10  # classic KV-streaming GEMV

    def test_fp16_prefill_compute_bound(self, prefill_geom):
        p = roofline(METHODS["fp16"], prefill_geom, prefill=True)
        assert p.bound in ("tensor", "cuda")
        assert p.arithmetic_intensity > 100

    def test_latency_consistent_with_model(self, prefill_geom):
        for name in ("fp16", "turbo4", "kivi4"):
            p = roofline(METHODS[name], prefill_geom, prefill=True)
            lat = attention_latency(METHODS[name], prefill_geom, prefill=True)
            # Roofline latency = model latency minus launch overheads.
            assert p.latency <= lat
            assert p.latency > 0.8 * lat

    def test_turbo_raises_decode_intensity(self, decode_geom):
        """Compressing the cache raises ops/byte: fewer bytes, same math."""
        base = roofline(METHODS["fp16"], decode_geom, prefill=False)
        turbo = roofline(METHODS["turbo_mixed"], decode_geom, prefill=False)
        assert turbo.arithmetic_intensity > base.arithmetic_intensity

    def test_headroom_positive(self, decode_geom, prefill_geom):
        for geom, prefill in ((decode_geom, False), (prefill_geom, True)):
            p = roofline(METHODS["fp16"], geom, prefill)
            assert p.headroom() >= 1.0
            assert 0 < p.utilization <= 1.0 + 1e-9

    def test_phase_labels(self, decode_geom):
        assert roofline(METHODS["fp16"], decode_geom, False).phase == "decode"

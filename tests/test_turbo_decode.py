"""Tests for the TurboAttention decode kernel (Algorithm 2) and the API."""

import numpy as np
import pytest

from repro.attention.reference import reference_attention
from repro.core import TurboAttention, TurboConfig


@pytest.fixture
def prefilled(rng):
    h, n, d = 4, 96, 32
    q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
    turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
    out, state = turbo.prefill(q, k, v, causal=True)
    return turbo, state, (q, k, v)


class TestDecodeAccuracy:
    def test_single_step_close_to_reference(self, prefilled, rng):
        turbo, state, (q, k, v) = prefilled
        h, d = q.shape[0], q.shape[2]
        q1, k1, v1 = (rng.standard_normal((h, d)) for _ in range(3))
        out = turbo.decode_step(q1, k1, v1, state)
        k_full = np.concatenate([k, k1[:, None, :]], axis=1)
        v_full = np.concatenate([v, v1[:, None, :]], axis=1)
        expected = reference_attention(q1[:, None, :], k_full, v_full)[:, 0, :]
        rel = np.linalg.norm(out - expected) / np.linalg.norm(expected)
        assert rel < 0.20  # 4-bit cache reads dominate the error

    def test_multi_step_stays_bounded(self, prefilled, rng):
        turbo, state, (q, k, v) = prefilled
        h, d = q.shape[0], q.shape[2]
        k_full, v_full = k, v
        rels = []
        for _ in range(40):
            q1, k1, v1 = (rng.standard_normal((h, d)) for _ in range(3))
            out = turbo.decode_step(q1, k1, v1, state)
            k_full = np.concatenate([k_full, k1[:, None, :]], axis=1)
            v_full = np.concatenate([v_full, v1[:, None, :]], axis=1)
            expected = reference_attention(q1[:, None, :], k_full, v_full)[:, 0, :]
            rels.append(np.linalg.norm(out - expected) / np.linalg.norm(expected))
        assert np.mean(rels) < 0.20
        assert np.max(rels) < 0.45

    def test_seq_len_tracks_tokens(self, prefilled, rng):
        turbo, state, (q, _, _) = prefilled
        h, d = q.shape[0], q.shape[2]
        start = state.seq_len
        for i in range(10):
            turbo.decode_step(
                rng.standard_normal((h, d)),
                rng.standard_normal((h, d)),
                rng.standard_normal((h, d)),
                state,
            )
            assert state.seq_len == start + i + 1

    def test_buffer_flushes_into_cache(self, prefilled, rng):
        turbo, state, (q, _, _) = prefilled
        h, d = q.shape[0], q.shape[2]
        blocks_before = len(state.cache)
        # Fill the 32-slot buffer past capacity: a flush must occur.
        for _ in range(40):
            turbo.decode_step(
                rng.standard_normal((h, d)),
                rng.standard_normal((h, d)),
                rng.standard_normal((h, d)),
                state,
            )
        assert len(state.cache) > blocks_before
        # No tokens lost across the flush boundary.
        assert state.seq_len == 96 + 40

    def test_flushed_blocks_never_recompressed(self, prefilled, rng):
        turbo, state, (q, _, _) = prefilled
        h, d = q.shape[0], q.shape[2]
        snapshot = [blk.k.codes.copy() for blk in state.cache.blocks]
        for _ in range(40):
            turbo.decode_step(
                rng.standard_normal((h, d)) * 50,  # outliers to tempt a rescale
                rng.standard_normal((h, d)) * 50,
                rng.standard_normal((h, d)) * 50,
                state,
            )
        for before, blk in zip(snapshot, state.cache.blocks):
            np.testing.assert_array_equal(before, blk.k.codes)

    def test_outliers_clamped_not_rescaled(self, prefilled, rng):
        turbo, state, (q, _, _) = prefilled
        h, d = q.shape[0], q.shape[2]
        scale_before = state.buffer.k_scale.copy()
        turbo.decode_step(
            rng.standard_normal((h, d)),
            rng.standard_normal((h, d)) * 100,
            rng.standard_normal((h, d)),
            state,
        )
        np.testing.assert_array_equal(scale_before, state.buffer.k_scale)
        assert state.buffer.clamped_total > 0

    def test_gqa_decode(self, rng):
        hq, hkv, n, d = 8, 2, 64, 16
        q = rng.standard_normal((hq, n, d))
        k = rng.standard_normal((hkv, n, d))
        v = rng.standard_normal((hkv, n, d))
        turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
        _, state = turbo.prefill(q, k, v, causal=True)
        q1 = rng.standard_normal((hq, d))
        k1 = rng.standard_normal((hkv, d))
        v1 = rng.standard_normal((hkv, d))
        out = turbo.decode_step(q1, k1, v1, state)
        k_full = np.repeat(np.concatenate([k, k1[:, None, :]], axis=1), 4, axis=0)
        v_full = np.repeat(np.concatenate([v, v1[:, None, :]], axis=1), 4, axis=0)
        expected = reference_attention(q1[:, None, :], k_full, v_full)[:, 0, :]
        rel = np.linalg.norm(out - expected) / np.linalg.norm(expected)
        assert rel < 0.20


class TestStateAccounting:
    def test_compression_ratio_reasonable(self, prefilled):
        _, state, _ = prefilled
        assert 2.5 < state.compression_ratio(16) < 6.0

    def test_mixed_precision_compresses_more(self, rng):
        h, n, d = 4, 128, 32
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        uniform = TurboAttention(TurboConfig(kv_bits=4))
        mixed = TurboAttention(TurboConfig(mixed_precision=True))
        _, s_uniform = uniform.prefill(q, k, v)
        _, s_mixed = mixed.prefill(q, k, v)
        assert s_mixed.storage_bits < s_uniform.storage_bits

    def test_effective_bits_near_nominal(self, prefilled):
        _, state, _ = prefilled
        # 4-bit codes + metadata + INT8 buffer tail.
        assert 4.0 < state.effective_bits_per_value() < 6.0

    def test_choose_head_bits_uniform(self, rng):
        turbo = TurboAttention(TurboConfig(kv_bits=4))
        k = rng.standard_normal((4, 32, 8))
        np.testing.assert_array_equal(turbo.choose_head_bits(k, k), [4, 4, 4, 4])

    def test_choose_head_bits_mixed_count(self, rng):
        turbo = TurboAttention(TurboConfig(mixed_precision=True, two_bit_fraction=0.5))
        k = rng.standard_normal((4, 32, 8))
        bits = turbo.choose_head_bits(k, k)
        assert (bits == 2).sum() == 2 and (bits == 4).sum() == 2


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_q": 0},
            {"buffer_size": -1},
            {"kv_bits": 5},
            {"two_bit_fraction": 1.5},
            {"head_selection": "magic"},
            {"int8_max_code": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            TurboConfig(**kwargs)

    def test_average_kv_bits(self):
        assert TurboConfig(kv_bits=4).average_kv_bits() == 4.0
        assert TurboConfig(mixed_precision=True, two_bit_fraction=0.5).average_kv_bits() == 3.0

"""Tests for the tile-level kernel VM."""

import numpy as np
import pytest

from repro.attention.flash import flash_attention
from repro.core.config import TurboConfig
from repro.core.prefill import turbo_prefill
from repro.kernels import (
    Alloc,
    Load,
    MachineLimits,
    Space,
    TileMachine,
    build_turbo_tile_program,
    max_feasible_block,
    run_attention_program,
)
from repro.kernels.machine import CapacityError


@pytest.fixture
def qkv_single(rng):
    n, d = 128, 32
    return tuple(rng.standard_normal((n, d)) for _ in range(3))


class TestTileMachine:
    def test_alloc_free_accounting(self):
        m = TileMachine()
        m.alloc("a", (64, 64), "fp16", Space.SMEM)
        assert m._usage[Space.SMEM] == 64 * 64 * 2
        m.free("a")
        assert m._usage[Space.SMEM] == 0
        assert m.report().peak_smem_bytes == 64 * 64 * 2

    def test_capacity_enforced(self):
        m = TileMachine(limits=MachineLimits(smem_bytes=1024, reg_bytes=1024))
        with pytest.raises(CapacityError):
            m.alloc("big", (64, 64), "fp16", Space.SMEM)

    def test_enforce_off_records_peak(self):
        m = TileMachine(limits=MachineLimits(smem_bytes=1024, reg_bytes=1024), enforce=False)
        m.alloc("big", (64, 64), "fp16", Space.SMEM)
        assert not m.report().fits(m.limits)

    def test_double_alloc_raises(self):
        m = TileMachine()
        m.alloc("a", (4,), "fp32", Space.REG)
        with pytest.raises(KeyError):
            m.alloc("a", (4,), "fp32", Space.REG)

    def test_integer_buffer_rejects_fractions(self):
        m = TileMachine()
        m.alloc("c", (2,), "int8", Space.REG)
        with pytest.raises(ValueError):
            m.write("c", np.array([0.5, 1.0]))

    def test_shape_mismatch_raises(self):
        m = TileMachine()
        m.alloc("a", (2, 2), "fp32", Space.REG)
        with pytest.raises(ValueError):
            m.write("a", np.zeros((3, 3)))

    def test_load_counts_bytes(self, rng):
        m = TileMachine()
        m.hbm["X"] = rng.standard_normal((8, 8))
        m.alloc("t", (8, 8), "fp16", Space.SMEM)
        Load("t", "X").execute(m)
        assert m.counts.bytes_read == 8 * 8 * 2


class TestProgramNumerics:
    def test_flash_program_matches_kernel(self, qkv_single):
        q, k, v = qkv_single
        out, _ = run_attention_program("flash", q, k, v, block_q=32, block_k=32)
        ref = flash_attention(q[None], k[None], v[None], causal=False)[0]
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_turbo_program_bit_identical_to_kernel(self, qkv_single):
        q, k, v = qkv_single
        out, _ = run_attention_program("turbo", q, k, v, block_q=32, block_k=32)
        res = turbo_prefill(
            q[None], k[None], v[None],
            TurboConfig(block_q=32, block_k=32), np.array([4]), causal=False,
        )
        np.testing.assert_array_equal(out, res.output[0])

    @pytest.mark.parametrize("bq,bk", [(16, 32), (32, 16), (64, 64), (128, 32)])
    def test_turbo_program_any_blocking(self, qkv_single, bq, bk):
        q, k, v = qkv_single
        out, _ = run_attention_program("turbo", q, k, v, block_q=bq, block_k=bk)
        res = turbo_prefill(
            q[None], k[None], v[None],
            TurboConfig(block_q=bq, block_k=bk), np.array([4]), causal=False,
        )
        np.testing.assert_array_equal(out, res.output[0])

    def test_indivisible_blocks_raise(self, qkv_single):
        q, k, v = qkv_single
        with pytest.raises(ValueError):
            run_attention_program("turbo", q, k, v, block_q=48, block_k=48)

    def test_unknown_kind_raises(self, qkv_single):
        q, k, v = qkv_single
        with pytest.raises(ValueError):
            run_attention_program("triton", q, k, v)


class TestResources:
    def test_turbo_smem_below_flash(self, qkv_single):
        """INT8 staging: the turbo kernel's shared-memory peak is lower
        than flash's at the same block size (the §2.2 pressure argument)."""
        q, k, v = qkv_single
        _, flash_rep = run_attention_program("flash", q, k, v, block_q=32, block_k=32)
        _, turbo_rep = run_attention_program("turbo", q, k, v, block_q=32, block_k=32)
        assert turbo_rep.peak_smem_bytes < flash_rep.peak_smem_bytes

    def test_turbo_ops_are_integer(self, qkv_single):
        q, k, v = qkv_single
        _, rep = run_attention_program("turbo", q, k, v, block_q=32, block_k=32)
        assert rep.counts.int8_tc > 0
        _, flash_rep = run_attention_program("flash", q, k, v, block_q=32, block_k=32)
        assert flash_rep.counts.int8_tc == 0
        assert flash_rep.counts.fp16_tc > 0

    def test_paper_block_size_fits_a100(self):
        """(B_r, B_c) = (64, 64) at head dim 128 — the paper's default —
        fits the A100 CTA budget for both kernels."""
        rng = np.random.default_rng(0)
        q, k, v = (rng.standard_normal((128, 128)) for _ in range(3))
        for kind in ("flash", "turbo"):
            _, rep = run_attention_program(kind, q, k, v, block_q=64, block_k=64)
            assert rep.fits(MachineLimits())

    def test_max_feasible_block(self):
        flash_max = max_feasible_block("flash", 128)
        turbo_max = max_feasible_block("turbo", 128)
        # Both kernels are register-bound at d=128 on the A100 budget and
        # land at the block sizes real implementations use.
        assert flash_max == 64
        assert turbo_max >= flash_max

    def test_turbo_fits_larger_blocks_when_smem_bound(self):
        """With a register-rich but SMEM-poor budget the INT8 kernel's
        smaller staging footprint buys a strictly larger block."""
        tight = MachineLimits(smem_bytes=20 * 1024, reg_bytes=8 * 1024 * 1024)
        flash_max = max_feasible_block("flash", 128, limits=tight)
        turbo_max = max_feasible_block("turbo", 128, limits=tight)
        assert turbo_max > flash_max

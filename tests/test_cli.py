"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.batch == 4 and args.phase == "decode"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval", "--model", "gpt5"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "TurboAttention" in out and "turbo_mixed" in out

    def test_perf(self, capsys):
        assert main(["perf", "--batch", "2", "--context", "4096"]) == 0
        out = capsys.readouterr().out
        assert "vs fp16" in out and "turbo4" in out

    def test_perf_prefill(self, capsys):
        assert main(["perf", "--phase", "prefill"]) == 0
        assert "prefill latency" in capsys.readouterr().out

    def test_eval_single_method(self, capsys):
        assert main(
            ["eval", "--model", "llama3ish", "--task", "gsm8k_like", "--method", "fp16"]
        ) == 0
        out = capsys.readouterr().out
        assert "100.0" in out  # FP16 solves the task

    def test_serve_single_method(self, capsys):
        assert main(
            ["serve", "--rate", "4", "--requests", "10", "--method", "turbo_mixed"]
        ) == 0
        out = capsys.readouterr().out
        assert "tok/s" in out

    def test_harness_quick_subset(self, capsys):
        assert main(["harness", "fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "POLY" in out

    def test_prefix(self, capsys):
        assert main(["prefix", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "cache hits dominate" in out
        assert "sharing wins TTFT at equal KV budget" in out
        assert "block conservation" in out
        assert "VIOLATED" not in out

    def test_guard(self, capsys):
        assert main(["guard", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Chaos persistence matrix" in out
        assert "silent wrong output cases: 0" in out
        assert "VIOLATED" in out  # the no-guard run demonstrably breaks the bound
        assert "within bound" in out

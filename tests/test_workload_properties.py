"""Property tests for the workload generators in `repro.serving.workload`.

Every harness claim rests on these generators being deterministic and
statistically honest, so the properties are tested directly: seeded
reruns are byte-identical, arrivals are strictly increasing, empirical
rates match the requested Poisson rates within tolerance, and lengths
stay inside their inclusive ranges.
"""

import numpy as np
import pytest

from repro.serving.workload import (
    closed_batch_workload,
    poisson_workload,
    ramp_workload,
    zipf_shared_workload,
)


def _phase_rate(requests, start, end):
    n = sum(1 for r in requests if start <= r.arrival_time < end)
    return n / (end - start)


class TestPoissonWorkload:
    def test_seeded_determinism(self):
        for seed in (0, 1, 7, 1234):
            a = poisson_workload(200, 5.0, rng=np.random.default_rng(seed),
                                 n_sessions=16)
            b = poisson_workload(200, 5.0, rng=np.random.default_rng(seed),
                                 n_sessions=16)
            assert a == b

    def test_different_seeds_differ(self):
        a = poisson_workload(50, 5.0, rng=np.random.default_rng(0))
        b = poisson_workload(50, 5.0, rng=np.random.default_rng(1))
        assert a != b

    def test_arrivals_strictly_increasing(self):
        for seed in range(5):
            reqs = poisson_workload(300, 20.0, rng=np.random.default_rng(seed))
            arrivals = [r.arrival_time for r in reqs]
            assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
            assert arrivals[0] > 0.0

    def test_request_ids_are_sequential(self):
        reqs = poisson_workload(100, 10.0, rng=np.random.default_rng(3))
        assert [r.request_id for r in reqs] == list(range(100))

    @pytest.mark.parametrize("rate", [2.0, 10.0, 50.0])
    def test_empirical_rate_within_tolerance(self, rate):
        """The mean inter-arrival over many samples approaches 1/rate.

        With n exponential gaps, the sample mean concentrates around
        1/rate with relative sd 1/sqrt(n); 5 sigma keeps the seeded test
        honest without flakiness (the seed is fixed anyway).
        """
        n = 4000
        reqs = poisson_workload(n, rate, rng=np.random.default_rng(42))
        mean_gap = reqs[-1].arrival_time / n
        assert mean_gap == pytest.approx(1.0 / rate, rel=5.0 / np.sqrt(n))

    def test_lengths_inside_inclusive_ranges(self):
        reqs = poisson_workload(
            500, 10.0, prompt_range=(100, 200), gen_range=(10, 20),
            rng=np.random.default_rng(9),
        )
        assert all(100 <= r.prompt_len <= 200 for r in reqs)
        assert all(10 <= r.gen_len <= 20 for r in reqs)
        # Inclusive endpoints are actually reachable.
        assert any(r.prompt_len == 200 for r in reqs)
        assert any(r.prompt_len == 100 for r in reqs)

    def test_sessions_cover_range(self):
        reqs = poisson_workload(
            300, 10.0, rng=np.random.default_rng(5), n_sessions=4
        )
        assert {r.session_id for r in reqs} == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_workload(0, 5.0)
        with pytest.raises(ValueError):
            poisson_workload(10, 0.0)
        with pytest.raises(ValueError):
            poisson_workload(10, 5.0, n_sessions=0)


class TestRampWorkload:
    PHASES = [(4.0, 10.0), (25.0, 20.0), (3.0, 30.0)]

    def test_seeded_determinism(self):
        a = ramp_workload(self.PHASES, rng=np.random.default_rng(11))
        b = ramp_workload(self.PHASES, rng=np.random.default_rng(11))
        assert a == b

    def test_arrivals_strictly_increasing_across_phase_boundaries(self):
        reqs = ramp_workload(self.PHASES, rng=np.random.default_rng(2))
        arrivals = [r.arrival_time for r in reqs]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[-1] < sum(d for _, d in self.PHASES)

    def test_phase_rates_within_tolerance(self):
        """Each phase's empirical rate tracks its configured rate.

        A phase with rate r and duration d holds ~r*d arrivals; the
        Poisson count's sd is sqrt(r*d), so 5 sigma bounds the seeded
        check without flakiness.
        """
        reqs = ramp_workload(self.PHASES, rng=np.random.default_rng(8))
        start = 0.0
        for rate, duration in self.PHASES:
            observed = _phase_rate(reqs, start, start + duration)
            sigma = np.sqrt(rate * duration) / duration
            assert abs(observed - rate) < 5.0 * sigma, (rate, observed)
            start += duration

    def test_surge_phase_is_denser_than_calm_phases(self):
        reqs = ramp_workload(self.PHASES, rng=np.random.default_rng(4))
        calm = _phase_rate(reqs, 0.0, 10.0)
        surge = _phase_rate(reqs, 10.0, 30.0)
        tail = _phase_rate(reqs, 30.0, 60.0)
        assert surge > 2 * calm and surge > 2 * tail

    def test_validation(self):
        with pytest.raises(ValueError):
            ramp_workload([])
        with pytest.raises(ValueError):
            ramp_workload([(0.0, 10.0)])
        with pytest.raises(ValueError):
            ramp_workload([(5.0, 0.0)])
        with pytest.raises(ValueError):
            # Vanishing duration at tiny rate: no arrivals possible.
            ramp_workload([(1e-9, 1e-6)])


class TestZipfSharedWorkload:
    def _make(self, seed=0, n=400, **kw):
        kw.setdefault("n_tenants", 50)
        kw.setdefault("prompts_per_tenant", 4)
        return zipf_shared_workload(
            n, 10.0, rng=np.random.default_rng(seed), **kw
        )

    def test_seeded_determinism(self):
        for seed in (0, 3, 99):
            assert self._make(seed=seed) == self._make(seed=seed)
        assert self._make(seed=0) != self._make(seed=1)

    def test_arrivals_strictly_increasing(self):
        arrivals = [r.arrival_time for r in self._make(seed=2)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_prefix_identity_is_consistent(self):
        """The same prefix_id always means the same content: identical
        shared_prefix_len everywhere, bounded by prompt_len, and tenant
        doubles as the affinity session."""
        reqs = self._make(seed=4, n=600)
        seen = {}
        for r in reqs:
            assert r.prefix_id is not None
            assert 1 <= r.shared_prefix_len <= r.prompt_len
            assert r.session_id == r.tenant_id
            assert r.prefix_id // 4 == r.tenant_id
            assert seen.setdefault(r.prefix_id, r.shared_prefix_len) == (
                r.shared_prefix_len
            )

    def test_zipf_head_dominates_tail(self):
        """Rank-1 tenant frequency tracks the Zipf pmf head and beats
        every lower rank (5-sigma binomial bound, seed fixed)."""
        n, n_tenants, s = 4000, 50, 1.4
        reqs = self._make(seed=42, n=n, n_tenants=n_tenants, zipf_s=s)
        counts = np.bincount([r.tenant_id for r in reqs], minlength=n_tenants)
        ranks = np.arange(1, n_tenants + 1, dtype=float)
        p = ranks ** -s
        p /= p.sum()
        sigma = np.sqrt(n * p[0] * (1 - p[0]))
        assert abs(counts[0] - n * p[0]) < 5 * sigma
        assert counts[0] == counts.max()
        assert counts[0] > 3 * counts[n_tenants // 2]

    def test_hit_potential_monotone_in_skew(self):
        """Higher zipf_s concentrates traffic on fewer prefixes, so the
        warm-request fraction (requests whose prefix appeared before)
        rises with skew — the knob the harness turns."""
        def warm_fraction(s):
            reqs = self._make(seed=7, n=800, n_tenants=200, zipf_s=s)
            seen, warm = set(), 0
            for r in reqs:
                warm += r.prefix_id in seen
                seen.add(r.prefix_id)
            return warm / len(reqs)

        fractions = [warm_fraction(s) for s in (0.8, 1.4, 2.0)]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_zero_suffix_models_exact_replay(self):
        reqs = self._make(seed=5, suffix_len_range=(0, 0))
        assert all(r.prompt_len == r.shared_prefix_len for r in reqs)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_shared_workload(0, 10.0)
        with pytest.raises(ValueError):
            zipf_shared_workload(10, 0.0)
        with pytest.raises(ValueError):
            zipf_shared_workload(10, 1.0, n_tenants=0)
        with pytest.raises(ValueError):
            zipf_shared_workload(10, 1.0, zipf_s=0.0)
        with pytest.raises(ValueError):
            zipf_shared_workload(10, 1.0, prefix_len_range=(0, 10))
        with pytest.raises(ValueError):
            zipf_shared_workload(10, 1.0, suffix_len_range=(-1, 10))


class TestClosedBatchWorkload:
    def test_all_arrive_at_zero_with_uniform_lengths(self):
        reqs = closed_batch_workload(16, prompt_len=1024, gen_len=125)
        assert len(reqs) == 16
        assert all(r.arrival_time == 0.0 for r in reqs)
        assert all(r.prompt_len == 1024 and r.gen_len == 125 for r in reqs)
        assert [r.request_id for r in reqs] == list(range(16))

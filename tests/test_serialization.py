"""Tests for KV-state serialization (packed round-trip)."""

import copy

import numpy as np
import pytest

from repro.core import TurboAttention, TurboConfig
from repro.core.serialization import (
    load_state,
    save_state,
    state_from_arrays,
    state_to_arrays,
)


@pytest.fixture
def state(rng):
    h, n, d = 4, 200, 32
    q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
    turbo = TurboAttention(
        TurboConfig(mixed_precision=True, block_q=32, block_k=32, buffer_size=32)
    )
    _, st = turbo.prefill(q, k, v)
    # A few decode steps so the buffer is non-empty and non-trivial.
    for _ in range(5):
        turbo.decode_step(
            rng.standard_normal((h, d)), rng.standard_normal((h, d)),
            rng.standard_normal((h, d)), st,
        )
    return turbo, st


class TestRoundTrip:
    def test_arrays_roundtrip_exact(self, state):
        _, st = state
        restored = state_from_arrays(state_to_arrays(st))
        assert restored.seq_len == st.seq_len
        np.testing.assert_array_equal(restored.head_bits, st.head_bits)
        for a, b in zip(st.cache.blocks, restored.cache.blocks):
            np.testing.assert_array_equal(a.k.codes, b.k.codes)
            np.testing.assert_array_equal(a.v.codes, b.v.codes)
            np.testing.assert_array_equal(a.k.s_int, b.k.s_int)
            np.testing.assert_array_equal(a.k.z_int, b.k.z_int)
            np.testing.assert_array_equal(a.k.float_scale, b.k.float_scale)
        np.testing.assert_array_equal(st.buffer.codes()[0], restored.buffer.codes()[0])
        np.testing.assert_array_equal(st.buffer.codes()[1], restored.buffer.codes()[1])

    def test_decode_continues_identically(self, state, rng):
        """Decoding against a restored state is bit-identical."""
        turbo, st = state
        restored = state_from_arrays(state_to_arrays(copy.deepcopy(st)))
        q1, k1, v1 = (rng.standard_normal((4, 32)) for _ in range(3))
        a = turbo.decode_step(q1, k1, v1, st)
        b = turbo.decode_step(q1, k1, v1, restored)
        np.testing.assert_array_equal(a, b)

    def test_npz_file_roundtrip(self, state, tmp_path):
        _, st = state
        path = tmp_path / "kv_state.npz"
        save_state(path, st)
        restored = load_state(path)
        assert restored.seq_len == st.seq_len
        assert restored.storage_bits == st.storage_bits

    def test_payload_tracks_compression(self, state):
        """The serialized payload lands near the accounted storage (packed
        codes, not byte-per-code); container overhead excluded."""
        from repro.core.serialization import state_to_arrays

        _, st = state
        payload = sum(a.nbytes for a in state_to_arrays(st).values())
        unpacked_size = 2 * st.seq_len * st.cache.n_heads * st.cache.head_dim
        assert payload < unpacked_size  # < 1 byte per logical value
        assert payload < 2.0 * st.storage_bytes

    def test_empty_buffer_roundtrip(self, rng):
        h, n, d = 2, 64, 16
        q, k, v = (rng.standard_normal((h, n, d)) for _ in range(3))
        turbo = TurboAttention(TurboConfig(block_q=32, block_k=32, buffer_size=32))
        _, st = turbo.prefill(q, k, v)  # 64 = 2 full blocks, empty buffer
        assert len(st.buffer) == 0
        restored = state_from_arrays(state_to_arrays(st))
        assert len(restored.buffer) == 0
        assert restored.seq_len == st.seq_len

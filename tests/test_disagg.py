"""Tests for the disaggregated prefill/decode cluster mode.

The invariants under test are the robustness core of KV migration:
conservation (every request terminates exactly once in exactly one
bucket) across every migration-fault x retry-budget x admission cell,
byte-identical reruns, salvage recovery that resumes from a valid prefix
instead of a full re-prefill, local-decode fallback when the retry
budget runs dry, and independent per-pool autoscaling.
"""

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    Autoscaler,
    ClusterConfig,
    ClusterSimulator,
    DisaggConfig,
    FaultConfig,
)
from repro.migrate import MigrationConfig
from repro.overload import AdmissionConfig
from repro.perf.attention_costs import METHODS
from repro.perf.e2e import ModelGeometry
from repro.serving import EngineConfig, Request, poisson_workload
from repro.serving.request import RequestStatus
from repro.sim import ListTraceSink, diff_traces, format_diff, trace_digest


@pytest.fixture(scope="module")
def model():
    return ModelGeometry.phi3_medium()


def _workload(n=16, rate=4.0, seed=9):
    return poisson_workload(
        n, arrival_rate=rate, prompt_range=(256, 2048), gen_range=(32, 128),
        rng=np.random.default_rng(seed),
    )


def _faults(**overrides):
    base = dict(
        seed=13, crash_rate=0.0, stall_rate=0.0, request_timeout_s=120.0,
        max_retries=3, horizon_pad_s=10.0,
    )
    base.update(overrides)
    return FaultConfig(**base)


def _sim(model, config, trace=None):
    return ClusterSimulator(model, METHODS["turbo4"], config, trace=trace)


def _assert_conserved(sim, metrics, workload, label=""):
    assert (
        metrics.completed + metrics.failed + metrics.rejected + metrics.shed
        == metrics.total == len(workload)
    ), label
    seen = dict(sim.failed)
    seen.update(sim.rejected)
    for replica in sim.replicas:
        for rid, rec in replica.records.items():
            assert rid not in seen, f"{label}: rid {rid} terminated twice"
            seen[rid] = rec
    assert set(seen) == {r.request_id for r in workload}, label
    for rec in seen.values():
        assert rec.status in (
            RequestStatus.FINISHED, RequestStatus.FAILED,
            RequestStatus.REJECTED, RequestStatus.SHED,
        ), label


class TestDisaggConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DisaggConfig(n_prefill=0)
        with pytest.raises(ValueError):
            DisaggConfig(n_decode=0)

    def test_fleet_is_prefill_plus_decode(self, model):
        sim = _sim(model, ClusterConfig(
            disagg=DisaggConfig(n_prefill=2, n_decode=3),
        ))
        assert [r.role for r in sim.replicas] == (
            ["prefill"] * 2 + ["decode"] * 3
        )

    def test_fault_config_migration_validation(self):
        with pytest.raises(ValueError):
            _faults(migration_drop_rate=0.7, migration_corrupt_rate=0.7)
        with pytest.raises(ValueError):
            _faults(migration_drop_rate=-0.1)
        with pytest.raises(ValueError):
            _faults(max_migration_retries=-1)


class TestConservationMatrix:
    #: migration-fault schedule x retry budget x admission control.
    SCHEDULES = {
        "clean": None,
        "drops": dict(migration_drop_rate=0.5),
        "corrupt": dict(migration_corrupt_rate=0.5),
        "mixed": dict(
            migration_drop_rate=0.25, migration_corrupt_rate=0.25,
            link_stall_rate=0.05, crash_rate=0.02, stall_rate=0.02,
            request_timeout_s=45.0,
        ),
    }

    def test_conservation_matrix(self, model):
        wl = _workload()
        for sched_name, overrides in self.SCHEDULES.items():
            for budget in (0, 2):
                for admission in (None, AdmissionConfig(max_queue_depth=4)):
                    faults = (
                        None if overrides is None
                        else _faults(max_migration_retries=budget, **overrides)
                    )
                    config = ClusterConfig(
                        policy="least_kv", faults=faults, admission=admission,
                        disagg=DisaggConfig(n_prefill=1, n_decode=1),
                    )
                    label = f"{sched_name}/budget={budget}/adm={bool(admission)}"
                    sim = _sim(model, config)
                    metrics = sim.run(wl)
                    _assert_conserved(sim, metrics, wl, label)

    def test_runs_are_byte_identical(self, model):
        """The same seeded cell twice produces the same trace bytes."""
        wl = _workload()
        config = ClusterConfig(
            policy="least_kv",
            faults=_faults(
                migration_drop_rate=0.25, migration_corrupt_rate=0.25,
                link_stall_rate=0.05, crash_rate=0.02,
            ),
            disagg=DisaggConfig(n_prefill=1, n_decode=2),
        )
        sinks = []
        for _ in range(2):
            sink = ListTraceSink()
            _sim(model, config, trace=sink).run(wl)
            sinks.append(sink)
        diff = diff_traces(sinks[0].records, sinks[1].records)
        assert diff is None, format_diff(diff, "run1", "run2")
        assert trace_digest(sinks[0].records) == trace_digest(sinks[1].records)


class TestMigrationOutcomes:
    def test_clean_run_migrates_every_request(self, model):
        wl = _workload()
        sim = _sim(model, ClusterConfig(
            disagg=DisaggConfig(n_prefill=1, n_decode=1),
        ))
        m = sim.run(wl)
        assert m.completed == len(wl)
        assert m.migrations == len(wl)
        assert m.migration_retries == 0
        assert m.migrated_bytes > 0
        assert m.local_decode_fallbacks == 0
        # Handoff latency is recorded for every migrated request.
        assert m.p99_handoff_latency > 0
        # Every request decoded on the decode replica.
        decode = sim.replicas[1]
        assert sum(1 for r in decode.records.values()
                   if r.finished_at is not None) == len(wl)

    def test_wire_bytes_scale_with_kv_width(self, model):
        """A turbo4 fleet ships kv_bits/16 of the fp16 fleet's bytes."""
        wl = _workload(n=8)
        config = ClusterConfig(disagg=DisaggConfig(n_prefill=1, n_decode=1))
        shipped = {}
        for name in ("fp16", "turbo4"):
            m = ClusterSimulator(model, METHODS[name], config).run(wl)
            shipped[name] = m.migrated_bytes
        ratio = shipped["turbo4"] / shipped["fp16"]
        assert ratio == pytest.approx(METHODS["turbo4"].kv_bits / 16.0)

    def test_corrupted_handoff_salvages_a_prefix(self, model):
        """Seeded corruption: the decode replica resumes from the longest
        valid prefix, recomputing strictly less than a full re-prefill."""
        wl = _workload()
        sim = _sim(model, ClusterConfig(
            faults=_faults(migration_corrupt_rate=1.0),
            disagg=DisaggConfig(n_prefill=1, n_decode=1),
        ))
        m = sim.run(wl)
        assert m.completed == len(wl)
        assert m.migration_corruptions >= len(wl)
        full = sum(r.prompt_len for r in wl)
        assert 0 < m.salvage_recomputed_tokens < full
        recs = sim.replicas[1].records
        assert len(recs) == len(wl)
        for rec in recs.values():
            assert 0 < rec.salvage_recomputed_tokens < rec.request.prompt_len

    def test_no_salvage_recomputes_full_prompts(self, model):
        wl = _workload()
        sim = _sim(model, ClusterConfig(
            faults=_faults(migration_corrupt_rate=1.0),
            disagg=DisaggConfig(
                n_prefill=1, n_decode=1,
                migration=MigrationConfig(salvage=False),
            ),
        ))
        m = sim.run(wl)
        assert m.completed == len(wl)
        # Every (single-corruption) request re-prefilled from scratch.
        assert m.salvage_recomputed_tokens == sum(r.prompt_len for r in wl)

    def test_budget_exhaustion_falls_back_to_local_decode(self, model):
        """Every transfer drops; after the retry budget the request
        decodes on its prefill replica — degraded, never lost."""
        wl = _workload()
        sim = _sim(model, ClusterConfig(
            faults=_faults(migration_drop_rate=1.0, max_migration_retries=2),
            disagg=DisaggConfig(n_prefill=1, n_decode=1),
        ))
        m = sim.run(wl)
        assert m.completed == len(wl)
        assert m.migrations == 0
        assert m.local_decode_fallbacks == len(wl)
        # 1 initial send + 2 retried sends per request, all dropped.
        assert m.migration_drops == 3 * len(wl)
        assert m.migration_retries == 3 * len(wl)
        # Everything finished on the *prefill* replica.
        prefill = sim.replicas[0]
        assert sum(1 for r in prefill.records.values()
                   if r.finished_at is not None) == len(wl)

    def test_zero_budget_falls_back_after_first_drop(self, model):
        wl = _workload(n=6)
        sim = _sim(model, ClusterConfig(
            faults=_faults(migration_drop_rate=1.0, max_migration_retries=0),
            disagg=DisaggConfig(n_prefill=1, n_decode=1),
        ))
        m = sim.run(wl)
        assert m.completed == len(wl)
        assert m.migration_drops == len(wl)
        assert m.local_decode_fallbacks == len(wl)

    def test_rejected_handoff_charges_record_waste(self, model):
        """A terminal REJECT at the decode pool must not vanish the
        source's real prefill work from the record's waste counters."""
        from repro.overload.admission import AdmissionVerdict

        sim = _sim(model, ClusterConfig(
            disagg=DisaggConfig(n_prefill=1, n_decode=1),
        ))
        source = sim.replicas[0]
        source.submit(Request(0, 0.0, 512, 16))
        while not source.engine.migrating:
            source.step()
        record = source.engine.migrating[0]
        assert record.prefilled == 512

        class RejectingTarget:
            replica_id = 1
            dispatchable = True

            def submit_record(self, rec):
                rec.status = RequestStatus.REJECTED
                return AdmissionVerdict.REJECT

        ev = sim.kernel.schedule(
            1.0, "migrate_arrive",
            (record, source, RejectingTarget(), False), label="r0",
        )
        sim._inflight[0] = ev
        assert sim.kernel.pop() is ev
        sim._handle_migrate_arrive(ev, 1.0)
        assert record.wasted_prefill_tokens == 512
        assert 0 not in source.engine.migrating  # source KV released


class TestPoolAutoscaling:
    def test_pools_scale_independently(self, model):
        """A prefill-heavy burst scales the prefill pool without the
        decode pool's scaler firing on the same signal."""
        wl = poisson_workload(
            40, arrival_rate=20.0, prompt_range=(2048, 6144),
            gen_range=(16, 32), rng=np.random.default_rng(4),
        )
        scaler = AutoscalerConfig(
            min_replicas=1, max_replicas=4, scale_up_queue=2.0, cooldown_s=1.0,
        )
        sim = _sim(model, ClusterConfig(
            disagg=DisaggConfig(
                n_prefill=1, n_decode=1,
                prefill_autoscaler=scaler, decode_autoscaler=scaler,
            ),
        ))
        m = sim.run(wl)
        assert m.completed == len(wl)
        pools = {e.pool for e in sim.scale_events}
        assert "prefill" in pools
        ups = [e for e in sim.scale_events if e.action == "up"]
        assert ups and all(e.pool in ("prefill", "decode") for e in ups)
        assert len([r for r in sim.replicas if r.role == "prefill"]) > 1

    def test_scale_events_carry_no_pool_in_unified_mode(self, model):
        wl = poisson_workload(
            30, arrival_rate=20.0, prompt_range=(2048, 6144),
            gen_range=(16, 32), rng=np.random.default_rng(4),
        )
        sim = _sim(model, ClusterConfig(
            n_replicas=1,
            autoscaler=AutoscalerConfig(
                min_replicas=1, max_replicas=4, scale_up_queue=2.0,
                cooldown_s=1.0,
            ),
        ))
        sim.run(wl)
        assert sim.scale_events
        assert all(e.pool == "" for e in sim.scale_events)


class TestWarmBlockVeto:
    class _FakeReplica:
        def __init__(self, replica_id, outstanding_tokens, warm_blocks):
            self.replica_id = replica_id
            self.outstanding_tokens = outstanding_tokens
            self.warm_blocks = warm_blocks

    def test_veto_protects_warm_replicas(self):
        scaler = Autoscaler(AutoscalerConfig(warm_block_veto=8))
        cold = self._FakeReplica(0, outstanding_tokens=500, warm_blocks=2)
        warm = self._FakeReplica(1, outstanding_tokens=10, warm_blocks=32)
        # Without the veto the near-idle warm replica would be drained;
        # with it the busier cold replica is picked instead.
        assert scaler.pick_victim([cold, warm]) is cold
        assert Autoscaler(AutoscalerConfig()).pick_victim([cold, warm]) is warm

    def test_all_warm_means_no_victim(self):
        scaler = Autoscaler(AutoscalerConfig(warm_block_veto=1))
        replicas = [self._FakeReplica(i, 100, warm_blocks=4) for i in range(3)]
        assert scaler.pick_victim(replicas) is None

    def test_veto_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(warm_block_veto=0)


class TestUnifiedModeUnchanged:
    def test_unified_run_reports_no_migration_activity(self, model):
        wl = _workload(n=10)
        m = _sim(model, ClusterConfig(n_replicas=2, policy="least_kv")).run(wl)
        assert m.completed == len(wl)
        assert m.migrations == 0
        assert m.migrated_bytes == 0.0
        assert m.local_decode_fallbacks == 0
        d = m.as_dict()
        assert d["p50_handoff_latency_s"] is None
        assert d["p99_handoff_latency_s"] is None

"""Figure 1 regenerator: latency profile panels (a), (b), (c)."""

from repro.harness import fig1


def test_fig1_full(benchmark, once):
    res = once(benchmark, fig1.run, False)

    # (a) attention share grows monotonically and reaches ~80% at ~100k.
    shares = [p.attention_share for p in res["fig1a"]]
    assert all(a < b for a, b in zip(shares, shares[1:]))
    assert shares[-1] > 0.7

    # (b) decode kernel: fp16 memory-bound; kivi/gear dominated by the
    # dequantization pipeline; turbo cheaper overall.
    assert res["fig1b"]["fp16"]["load_kv"] > 0.7
    assert res["fig1b"]["kivi4"]["dequant"] > 0.3
    assert res["fig1b"]["gear4"]["dequant"] > 0.3
    assert res["fig1b"]["turbo_mixed"]["total_us"] < res["fig1b"]["fp16"]["total_us"]

    # (c) end-to-end: turbo < fp16 < kivi <= gear.
    totals = {m: d["total_s"] for m, d in res["fig1c"].items()}
    assert totals["turbo_mixed"] < totals["fp16"] < totals["kivi4"] <= totals["gear4"] * 1.01

    print()
    fig1.main(quick=False)

"""Figure 7a regenerator: throughput vs batch with OOM cutoffs."""

from repro.harness import fig7a


def test_fig7a_full(benchmark, once):
    res = once(benchmark, fig7a.run, False)

    best = {m: p for m, p in res.best.items()}
    # Ordering: turbo > kivi/gear > fp16 (paper Figure 7a).
    assert best["turbo_mixed"].tokens_per_second > best["kivi4"].tokens_per_second
    assert best["turbo4"].tokens_per_second > best["gear4"].tokens_per_second
    assert best["kivi4"].tokens_per_second > best["fp16"].tokens_per_second

    # Maximum-throughput gain in the paper's direction (2.37x reported;
    # our calibrated model lands ~1.8-2.1x).
    ratio = best["turbo_mixed"].tokens_per_second / best["fp16"].tokens_per_second
    assert 1.6 < ratio < 2.6

    # Compressed methods sustain much larger batches before OOM.
    assert best["turbo_mixed"].batch > 4 * best["fp16"].batch

    # Throughput curves are monotone in batch until OOM.
    for name, curve in res.curves.items():
        feasible = [p for p in curve if not p.oom]
        tps = [p.tokens_per_second for p in feasible]
        assert all(a <= b * 1.02 for a, b in zip(tps, tps[1:]))

    print()
    fig7a.main(quick=False)

"""Benchmark configuration.

Heavy harness benchmarks run once (``pedantic`` with one round) — they are
experiment regenerators, not microbenchmarks; their value is the printed
table plus the recorded wall time.  Kernel microbenchmarks use normal
pytest-benchmark statistics.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once

"""Overload-protection benchmark (ramp workload through the full stack)."""

from repro.harness import overload
from repro.overload import BrownoutLevel


def test_overload_full(benchmark, once):
    cells = once(benchmark, overload.run, False)
    by = {(c.method, c.protected): c for c in cells}
    assert set(by) == {
        (m, p) for m in overload.OVERLOAD_METHODS for p in (False, True)
    }

    # Conservation: every submitted request terminates exactly once —
    # finished, failed, rejected, or shed — in every cell.
    for c in cells:
        assert c.conserved
        assert c.metrics.total == cells[0].metrics.total

    # The protection stack actually engaged: rejections, sheds, and
    # brownout-precision tokens all occurred somewhere.
    assert all(by[(m, True)].metrics.rejected > 0 for m in overload.OVERLOAD_METHODS)
    assert any(by[(m, True)].metrics.shed > 0 for m in overload.OVERLOAD_METHODS)
    assert by[("turbo4", True)].metrics.brownout_tokens > 0
    assert by[("turbo4", True)].metrics.mean_kv_bits < 4.3

    # Unprotected engines never reject or shed — and pay for it.
    for m in overload.OVERLOAD_METHODS:
        open_cell = by[(m, False)].metrics
        assert open_cell.rejected == 0 and open_cell.shed == 0

    # Headline 1: under the same >=2x surge, the protected engine
    # sustains strictly higher SLO goodput than the unprotected one.
    assert (
        by[("turbo4", True)].metrics.goodput_rps
        > by[("turbo4", False)].metrics.goodput_rps
    )

    # Headline 2: precision is capacity — the Turbo engine's brownout
    # ladder sustains more goodput than protected FP16, which has no
    # precision axis to downshift.
    assert (
        by[("turbo4", True)].metrics.goodput_rps
        > by[("fp16", True)].metrics.goodput_rps
    )

    # Recovery: the brownout controller walked back to NORMAL with at
    # most one transition per cooldown window (hysteresis held).
    turbo = by[("turbo4", True)]
    assert turbo.final_level is BrownoutLevel.NORMAL
    times = [t.time for t in turbo.transitions]
    assert all(
        b - a >= overload.BROWNOUT.cooldown_s for a, b in zip(times, times[1:])
    )

    # Reproducibility: the same seed regenerates identical metrics and
    # the identical transition history.
    again = {(c.method, c.protected): c for c in overload.run(False)}
    for key, cell in by.items():
        assert again[key].metrics == cell.metrics
        assert again[key].transitions == cell.transitions

    print()
    overload.main(quick=False)

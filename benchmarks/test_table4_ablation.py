"""Table 4 regenerator: FlashQ vs SAS accuracy isolation."""

from repro.harness import table4


def test_table4_full(benchmark, once):
    rows = {r.method: r.accuracy for r in once(benchmark, table4.run, False)}
    # Paper Appendix C: both components individually near-lossless, the
    # combination slightly additive (FP16 50.79 -> FlashQ 49.60 ->
    # SAS 50.12 -> both 48.03 on AQuA).
    assert rows["fp16"] == 1.0
    assert rows["sas"] >= 0.98
    assert rows["flashq_4bit"] >= 0.95
    assert rows["flashq_4bit+sas"] >= 0.93
    assert rows["flashq_4bit+sas"] <= rows["sas"] + 1e-9

    print()
    table4.main(quick=False)

"""Figure 7b regenerator: head-selection strategy ablation."""

import numpy as np

from repro.harness import fig7b


def test_fig7b_full(benchmark, once):
    points = once(benchmark, fig7b.run, False)
    by = {(p.method, p.n_two_bit): p for p in points}
    counts = sorted({p.n_two_bit for p in points})
    interior = counts[1:-1]  # end points are identical across methods

    # Cache reconstruction error: the paper's priority metric is at least
    # as good as entropy and random everywhere, strictly better on average.
    for n in interior:
        assert by[("priority", n)].cache_error <= by[("entropy", n)].cache_error + 1e-9
        assert by[("priority", n)].cache_error <= by[("random", n)].cache_error + 1e-9
    pri = np.mean([by[("priority", n)].cache_error for n in interior])
    ent = np.mean([by[("entropy", n)].cache_error for n in interior])
    assert pri < ent

    # Accuracy degrades as more heads are pushed to 2-bit.
    pri_acc = [by[("priority", n)].accuracy for n in counts]
    assert pri_acc[0] > pri_acc[-1]

    print()
    fig7b.main(quick=False)

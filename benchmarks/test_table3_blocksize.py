"""Table 3 regenerator: block-size robustness ablation."""

from repro.harness import table3


def test_table3_full(benchmark, once):
    rows = once(benchmark, table3.run, False)
    accs = [r.accuracy for r in rows]
    # Paper: accuracy varies by < 0.5 points across block sizes.
    assert max(accs) - min(accs) < 0.03
    assert min(accs) > 0.95
    # Cache metadata shrinks as B_c grows (fewer tile scales).
    by_bc = {}
    for r in rows:
        by_bc.setdefault(r.block_k, r.effective_bits)
    assert by_bc[128] <= by_bc[64] <= by_bc[32]

    print()
    table3.main(quick=False)

"""Figure 5 regenerator: SAS polynomial fit quality."""

import numpy as np

from repro.harness import fig5


def test_fig5_full(benchmark, once):
    res = once(benchmark, fig5.run, False)
    # The published Eq. 15 coefficients are a genuine least-squares fit:
    # our refit recovers them and neither exceeds 5e-4 max error on [0,1].
    np.testing.assert_allclose(res["refit_coeffs"], res["paper_coeffs"], atol=2e-3)
    assert res["paper_max_err"] < 5e-4
    assert res["refit_max_err"] <= res["paper_max_err"] + 1e-6
    assert res["paper_mean_err"] < 2e-4

    print()
    fig5.main(quick=False)

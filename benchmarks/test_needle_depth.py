"""Needle-in-a-haystack depth sweep benchmark (extension experiment)."""

import numpy as np

from repro.harness import needle


def test_needle_full(benchmark, once):
    res = once(benchmark, needle.run, False)

    # FP16 flat at 100%.
    assert all(r.accuracy == 1.0 for r in res["fp16"])

    mean = lambda name: float(np.mean([r.accuracy for r in res[name]]))
    body = lambda name: float(
        np.mean([r.accuracy for r in res[name] if r.depth <= 0.75])
    )
    tail = lambda name: res[name][-1].accuracy  # depth 1.0

    # Turbo dominates KIVI at matched bit-widths.
    assert mean("turbo_2bit") > mean("kivi_2bit")
    assert mean("turbo_mixed") > mean("kivi_4bit") * 0.95

    # Recency structure: each compressed method reads its freshest window
    # at higher fidelity than the compressed body.
    assert tail("kivi_2bit") >= body("kivi_2bit")
    assert tail("turbo_2bit") >= body("turbo_2bit")
    # The turbo tail (INT8 buffer) is effectively lossless.
    assert tail("turbo_2bit") >= 0.95

    print()
    needle.main(quick=False)

"""Figure 6 regenerator: attention speedup sweeps with OOM markers."""

from repro.harness import fig6


def test_fig6_full(benchmark, once):
    res = once(benchmark, fig6.run, False)

    turbo_prefill = [
        p.speedup
        for p in res["ctx_sweep_prefill"] + res["batch_sweep_prefill"]
        if p.method.startswith("turbo") and p.speedup is not None
    ]
    # Paper: 1.2-1.8x prefill speedup band.
    assert all(1.1 < s < 2.0 for s in turbo_prefill)

    turbo_decode = [
        p.speedup
        for p in res["ctx_sweep_decode"] + res["batch_sweep_decode"]
        if p.method.startswith("turbo") and p.speedup is not None
    ]
    # Paper: up to ~1.7x decode; allow the model's slight overshoot.
    assert max(turbo_decode) < 2.2
    assert min(turbo_decode) > 1.0

    # KIVI/GEAR decode runs *slower* than the FP16 baseline (dequant).
    for p in res["ctx_sweep_decode"]:
        if p.method in ("kivi4", "gear4") and p.speedup is not None:
            assert p.speedup < 1.0

    # FP16 hits OOM in the context sweep while turbo_mixed reaches 32k.
    assert any(p.baseline_oom for p in res["ctx_sweep_decode"])
    reach_32k = [
        p for p in res["ctx_sweep_decode"]
        if p.method == "turbo_mixed" and p.context == 32768
    ]
    assert reach_32k and reach_32k[0].speedup is not None

    print()
    fig6.main(quick=False)

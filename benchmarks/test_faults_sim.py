"""Fault-tolerance extension benchmark (methods under a shared fault schedule)."""

from repro.harness import faults


def test_faults_full(benchmark, once):
    cells = once(benchmark, faults.run, False)
    by = {c.method: c for c in cells}
    assert set(by) == set(faults.FAULT_METHODS)

    # Graceful degradation: every submitted request terminates exactly
    # once — completed or failed-after-retries — in every cell, healthy
    # or faulted.  Nothing is lost untracked.
    for c in cells:
        assert c.healthy.completed == c.healthy.total
        assert c.faulted.completed + c.faulted.failed == c.faulted.total
        assert c.faulted.total == c.healthy.total

    # The fault schedule actually bites: crashes fired and recovery work
    # (retries, re-prefilled tokens) was performed somewhere.
    assert all(c.faulted.crashes > 0 for c in cells)
    assert any(c.faulted.retries > 0 for c in cells)
    assert any(c.faulted.wasted_prefill_tokens > 0 for c in cells)

    # Headline: under the identical seeded schedule, the compressed fleet
    # sustains higher goodput than FP16 — despite a larger blast radius
    # per crash (denser replicas lose more in-flight KV state).
    assert by["turbo_mixed"].faulted.goodput_rps > by["fp16"].faulted.goodput_rps
    assert (
        by["turbo_mixed"].faulted.wasted_prefill_tokens
        > by["fp16"].faulted.wasted_prefill_tokens
    )

    # Reproducibility: the same seed regenerates identical metrics.
    again = {c.method: c for c in faults.run(False)}
    for method, cell in by.items():
        assert again[method].faulted == cell.faulted
        assert again[method].healthy == cell.healthy

    print()
    faults.main(quick=False)

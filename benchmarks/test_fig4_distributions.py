"""Figures 4/8/9 regenerator: Q/K/V channel statistics."""

from repro.harness import fig4


def test_fig4_full(benchmark, once):
    res = once(benchmark, fig4.run, False)

    for model in ("llama3ish", "qwen2ish", "phi3ish"):
        # Q/K carry heavy channel outliers on every model (Figure 4).
        assert res[model]["q_channel"].outlier_ratio > 3.0
        assert res[model]["k_channel"].outlier_ratio > 3.0

    # Phi3's value cache has the strongest channel outliers (Figure 9),
    # stronger than LLaMA3's (Figure 8).
    assert (
        res["phi3ish"]["v_channel"].outlier_ratio
        > res["llama3ish"]["v_channel"].outlier_ratio
    )
    # Channel-axis outlier structure exceeds token-axis structure for
    # values — the premise of channel-wise quantization (Appendix D).
    for model in ("llama3ish", "qwen2ish", "phi3ish"):
        assert (
            res[model]["v_channel"].outlier_ratio
            > res[model]["v_token"].outlier_ratio
        )

    print()
    fig4.main(quick=False)

"""Disaggregated-serving benchmark (prefill/decode pools + KV migration).

Besides asserting the harness's headline claims, this writes
``BENCH_disagg.json`` next to the repo root with the numbers an operator
would quote: the p99-TTFT win disaggregation buys on compressed KV, the
wire-byte discount per migrated request, and what salvage recovery saves
over full re-prefill under the seeded fault schedule.
"""

import json
from pathlib import Path

from repro.harness import disagg

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_disagg.json"


def test_disagg_full(benchmark, once):
    cells = once(benchmark, disagg.run, False)
    by = {(c.method, c.fleet, c.faulted, c.salvage): c for c in cells}
    assert len(cells) == 7

    # Conservation in every cell.
    for c in cells:
        m = c.metrics
        assert m.completed + m.failed + m.rejected + m.shed == m.total

    tu = by[("turbo4", "unified", False, True)].metrics
    td = by[("turbo4", "disagg", False, True)].metrics
    fu = by[("fp16", "unified", False, True)].metrics
    fd = by[("fp16", "disagg", False, True)].metrics
    sal = by[("turbo4", "disagg", True, True)].metrics
    nosal = by[("turbo4", "disagg", True, False)].metrics

    # Headline 1: on identical hardware, the compressed fleet's split
    # beats unified on tail TTFT; the FP16 fleet's split does not.
    assert td.p99_ttft < tu.p99_ttft
    assert fd.p99_ttft > fu.p99_ttft

    # Headline 2: every clean-run request migrated exactly once.
    assert td.migrations == td.completed
    assert td.migration_retries == 0

    # Headline 3: salvage recovery strictly beats full re-prefill under
    # the identical corruption schedule.
    assert sal.migration_corruptions == nosal.migration_corruptions > 0
    assert 0 < sal.salvage_recomputed_tokens < nosal.salvage_recomputed_tokens

    # Reproducibility: the same seeds regenerate identical metrics.
    again = disagg.run(False)
    assert [c.metrics for c in again] == [c.metrics for c in cells]

    wire_per_request = td.migrated_bytes / td.migrations
    BENCH_PATH.write_text(
        json.dumps(
            {
                "fleet": f"{disagg.N_PREFILL}P+{disagg.N_DECODE}D vs "
                         f"{disagg.N_PREFILL + disagg.N_DECODE} unified",
                "p99_ttft_unified_s": round(tu.p99_ttft, 3),
                "p99_ttft_disagg_s": round(td.p99_ttft, 3),
                "p99_ttft_win": round(tu.p99_ttft / td.p99_ttft, 3),
                "p99_ttft_fp16_disagg_s": round(fd.p99_ttft, 3),
                "goodput_disagg_rps": round(td.goodput_rps, 3),
                "migrated_mb_per_request_turbo4": round(wire_per_request / 1e6, 3),
                "p50_handoff_ms": round(td.p50_handoff_latency * 1e3, 3),
                "faulted_completed": sal.completed,
                "faulted_failed": sal.failed,
                "migration_drops": sal.migration_drops,
                "migration_corruptions": sal.migration_corruptions,
                "salvage_recomputed_tokens": sal.salvage_recomputed_tokens,
                "full_reprefill_tokens": nosal.salvage_recomputed_tokens,
                "salvage_saving": round(
                    1.0
                    - sal.salvage_recomputed_tokens
                    / nosal.salvage_recomputed_tokens,
                    3,
                ),
            },
            indent=2,
        )
        + "\n"
    )

    print()
    disagg.main(quick=False)

"""Table 1 regenerator: capability matrix (static, consistency-checked)."""

from repro.harness import table1


def test_table1(benchmark, once):
    rows = once(benchmark, table1.run, False)
    techniques = [r[0] for r in rows]
    assert "TurboAttention" in techniques and "FlashAttention" in techniques
    turbo = next(r for r in rows if r[0] == "TurboAttention")
    assert turbo[2] == "yes"  # KV compression
    assert "Quantized" in turbo[3]  # quantized attention execution

    print()
    table1.main()

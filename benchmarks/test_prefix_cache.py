"""Prefix-cache benchmark (Zipf multi-tenant stream through the full stack).

Besides asserting the harness's headline claims, this writes
``BENCH_prefix.json`` next to the repo root with the three numbers an
operator would quote: cache-hit ratio, the TTFT delta sharing buys at an
equal KV budget, and sustained request throughput.
"""

import json
import math
from pathlib import Path

from repro.harness import prefix

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_prefix.json"


def test_prefix_cache_full(benchmark, once):
    cells, fleet_cells = once(benchmark, prefix.run, False)
    by_mode = {c.mode: c for c in cells}
    by_policy = {f.policy: f for f in fleet_cells}
    assert set(by_mode) == {"open", "prefix", "tenancy"}
    assert set(by_policy) == {"round_robin", "affinity"}

    # Conservation in every cell, and every pool's audit is clean.
    for cell in list(cells) + list(fleet_cells):
        assert cell.conserved
        assert cell.pool_problems == ()

    open_m = by_mode["open"].metrics
    prefix_m = by_mode["prefix"].metrics
    tenancy_m = by_mode["tenancy"].metrics

    # The no-sharing baseline never touches the pool.
    assert math.isnan(open_m.prefix_hit_ratio)
    assert open_m.shared_blocks == 0 and open_m.cow_copies == 0

    # Headline 1: Zipf-shared traffic resolves most offered prompt
    # tokens from the pool.
    assert prefix_m.prefix_hit_ratio > 0.5
    assert prefix_m.prefill_tokens_saved > 0
    assert prefix_m.shared_blocks > 0

    # Headline 2: sharing wins TTFT at an equal KV byte budget, on the
    # identical arrival stream.
    assert prefix_m.p50_ttft < open_m.p50_ttft
    assert prefix_m.goodput_rps >= open_m.goodput_rps

    # Headline 3: tenant buckets + fair share make attainment fair —
    # near-1 Jain index — without giving back the sharing win.
    assert tenancy_m.fairness_jain > 0.9
    assert tenancy_m.fairness_jain > by_mode["prefix"].metrics.fairness_jain
    assert tenancy_m.p50_ttft < open_m.p50_ttft

    # Headline 4: warmth-probing affinity routing keeps fleet-wide hit
    # ratio at least as high as locality-blind round-robin.
    rr, aff = by_policy["round_robin"].metrics, by_policy["affinity"].metrics
    assert aff.prefix_hit_ratio >= rr.prefix_hit_ratio

    # Reproducibility: the same seed regenerates identical metrics.
    again, fleet_again = prefix.run(False)
    assert [c.metrics for c in again] == [c.metrics for c in cells]
    assert [f.metrics for f in fleet_again] == [f.metrics for f in fleet_cells]

    BENCH_PATH.write_text(
        json.dumps(
            {
                "method": prefix.PREFIX_METHOD,
                "cache_hit_ratio": round(prefix_m.prefix_hit_ratio, 4),
                "prefill_tokens_saved": prefix_m.prefill_tokens_saved,
                "ttft_p50_open_s": round(open_m.p50_ttft, 3),
                "ttft_p50_prefix_s": round(prefix_m.p50_ttft, 3),
                "ttft_p50_delta_s": round(open_m.p50_ttft - prefix_m.p50_ttft, 3),
                "requests_per_s": round(
                    prefix_m.completed / prefix_m.makespan, 3
                ),
                "goodput_rps": round(prefix_m.goodput_rps, 3),
                "fairness_jain_tenancy": round(tenancy_m.fairness_jain, 4),
                "fleet_hit_ratio_affinity": round(aff.prefix_hit_ratio, 4),
                "fleet_hit_ratio_round_robin": round(rr.prefix_hit_ratio, 4),
            },
            indent=2,
        )
        + "\n"
    )

    print()
    prefix.main(quick=False)

"""Microbenchmarks of the NumPy kernels themselves.

These time *our implementations* (not the modelled GPU): flash attention
vs turbo prefill vs reference, SAS vs np.exp, progressive compression, and
the decode step.  Useful for tracking implementation regressions.
"""

import numpy as np
import pytest

from repro.attention.flash import flash_attention
from repro.attention.reference import reference_attention
from repro.core import TurboAttention, TurboConfig
from repro.core.prefill import turbo_prefill
from repro.quant.progressive import pq_compress, pq_decompress_to_int8
from repro.sas.softmax import SAS


@pytest.fixture(scope="module")
def qkv():
    rng = np.random.default_rng(0)
    h, n, d = 8, 512, 64
    return tuple(rng.standard_normal((h, n, d)) for _ in range(3))


def test_reference_attention(benchmark, qkv):
    q, k, v = qkv
    benchmark(reference_attention, q, k, v)


def test_flash_attention(benchmark, qkv):
    q, k, v = qkv
    benchmark(flash_attention, q, k, v, causal=True)


def test_turbo_prefill_kernel(benchmark, qkv):
    q, k, v = qkv
    cfg = TurboConfig()
    bits = np.full(8, 4, dtype=np.int32)
    benchmark(turbo_prefill, q, k, v, cfg, bits, True)


def test_turbo_decode_step(benchmark, qkv):
    rng = np.random.default_rng(1)
    q, k, v = qkv
    turbo = TurboAttention(TurboConfig())
    _, state = turbo.prefill(q, k, v)
    q1, k1, v1 = (rng.standard_normal((8, 64)) for _ in range(3))
    benchmark(turbo.decode_step, q1, k1, v1, state)


def test_sas_exp(benchmark):
    rng = np.random.default_rng(2)
    x = -rng.uniform(0, 6, size=(64, 4096))
    sas = SAS()
    benchmark(sas, x)


def test_numpy_exp_baseline(benchmark):
    rng = np.random.default_rng(2)
    x = -rng.uniform(0, 6, size=(64, 4096))
    benchmark(np.exp, x)


def test_pq_compress(benchmark):
    rng = np.random.default_rng(3)
    codes = rng.integers(-119, 120, size=(8, 64, 64)).astype(np.int8)
    scale = np.ones((8, 1, 1))
    benchmark(pq_compress, codes, 4, scale)


def test_pq_decompress(benchmark):
    rng = np.random.default_rng(3)
    codes = rng.integers(-119, 120, size=(8, 64, 64)).astype(np.int8)
    block = pq_compress(codes, 4, np.ones((8, 1, 1)))
    benchmark(pq_decompress_to_int8, block)

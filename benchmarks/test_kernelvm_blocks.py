"""Kernel-VM block-size feasibility (the §5.6 SRAM argument, executable)."""

from repro.harness.common import render_table
from repro.kernels import MachineLimits, max_feasible_block, run_attention_program
import numpy as np


def _feasibility_table():
    rows = []
    budgets = {
        "A100 CTA (164K smem / 256K reg)": MachineLimits(),
        "smem-bound (20K smem)": MachineLimits(smem_bytes=20 * 1024, reg_bytes=8 << 20),
        "reg-bound (64K reg)": MachineLimits(smem_bytes=8 << 20, reg_bytes=64 * 1024),
    }
    for label, limits in budgets.items():
        rows.append([
            label,
            max_feasible_block("flash", 128, limits=limits),
            max_feasible_block("turbo", 128, limits=limits),
        ])
    return rows


def test_block_feasibility(benchmark, once):
    rows = once(benchmark, _feasibility_table)

    by_label = {r[0]: (r[1], r[2]) for r in rows}
    # On the real A100 budget both kernels land at block 64 (register
    # bound) — the block size the paper and FlashAttention-2 actually use.
    flash_a100, turbo_a100 = by_label["A100 CTA (164K smem / 256K reg)"]
    assert flash_a100 == 64 and turbo_a100 >= 64
    # When shared memory binds, INT8 staging fits strictly larger tiles.
    flash_smem, turbo_smem = by_label["smem-bound (20K smem)"]
    assert turbo_smem > flash_smem

    print()
    print(render_table(
        ["budget", "flash max block", "turbo max block"], rows,
        title="Largest feasible square block at head dim 128",
    ))

    # Also record absolute resource usage at the paper's (64, 64) point.
    rng = np.random.default_rng(0)
    q, k, v = (rng.standard_normal((128, 128)) for _ in range(3))
    usage = []
    for kind in ("flash", "turbo"):
        _, rep = run_attention_program(kind, q, k, v, block_q=64, block_k=64)
        usage.append([kind, rep.peak_smem_bytes // 1024, rep.peak_reg_bytes // 1024])
    print()
    print(render_table(
        ["kernel", "peak smem (KiB)", "peak reg (KiB)"], usage,
        title="Resource usage at (B_r, B_c) = (64, 64), d = 128",
    ))

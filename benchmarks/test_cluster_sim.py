"""Cluster-serving extension benchmark (methods x router policies)."""

from repro.harness import cluster


def test_cluster_full(benchmark, once):
    cells = once(benchmark, cluster.run, False)
    by = {(c.workload, c.method, c.policy): c for c in cells}
    workloads = sorted({c.workload for c in cells})

    # Conservation: every request finishes in every cell.
    assert all(c.metrics.completed == c.metrics.total for c in cells)
    assert len(cells) == (
        len(workloads) * len(cluster.CLUSTER_METHODS) * len(cluster.CLUSTER_POLICIES)
    )

    # Routing: KV-pressure-aware dispatch is at least as good as blind
    # round-robin on tail TTFT for some workload x method cell (the bursty
    # memory-pressure regime is where it pays).
    assert any(
        by[(w, m, "least_kv")].metrics.p99_ttft
        <= by[(w, m, "round_robin")].metrics.p99_ttft
        for w in workloads
        for m in cluster.CLUSTER_METHODS
    )

    # Capacity: at an equal per-replica HBM budget, the compressed cache
    # admits several times the FP16 concurrency.
    fp16 = by[("bursty", "fp16", "round_robin")].peak_concurrency
    turbo = by[("bursty", "turbo_mixed", "round_robin")].peak_concurrency
    assert turbo > 2 * fp16

    # Fleet goodput under pressure follows the compression ordering.
    assert (
        by[("bursty", "turbo_mixed", "least_kv")].metrics.goodput_rps
        > by[("bursty", "fp16", "least_kv")].metrics.goodput_rps
    )

    print()
    cluster.main(quick=False)

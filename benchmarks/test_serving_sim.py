"""Serving-level extension benchmark (open-system restatement of Fig 7a)."""

from repro.harness import serving_sim


def test_serving_full(benchmark, once):
    cells = once(benchmark, serving_sim.run, False)
    by = {(c.scenario, c.method): c.metrics for c in cells}

    # Everything completes in every scenario.
    assert all(c.metrics.completed == c.metrics.total for c in cells)

    # Overload: turbo sustains the highest throughput and the lowest tail
    # TTFT; FP16 queues hard and preempts.
    over = {m: by[("poisson_overload", m)] for m in serving_sim.SERVING_METHODS}
    assert (
        over["turbo_mixed"].throughput_tokens_per_s
        > over["kivi4"].throughput_tokens_per_s
        > over["fp16"].throughput_tokens_per_s
    )
    ratio = over["turbo_mixed"].throughput_tokens_per_s / over["fp16"].throughput_tokens_per_s
    assert 1.6 < ratio < 3.0  # the serving-level analogue of the 2.37x claim
    assert over["turbo_mixed"].p95_ttft < over["fp16"].p95_ttft
    assert over["fp16"].preemptions > 0
    assert over["turbo_mixed"].preemptions == 0

    # Closed batch reproduces the Figure 7a ordering end-to-end.
    closed = {m: by[("closed_batch", m)] for m in serving_sim.SERVING_METHODS}
    assert (
        closed["turbo_mixed"].throughput_tokens_per_s
        > closed["kivi4"].throughput_tokens_per_s
        > closed["fp16"].throughput_tokens_per_s
    )

    print()
    serving_sim.main(quick=False)

"""Table 2 regenerator: CoT-style retrieval accuracy across models/methods.

Runs the full-size table (paper prompt lengths, 256 decode hops) once and
asserts the paper's qualitative findings before printing the table.
"""

import numpy as np

from repro.harness import table2


def test_table2_full(benchmark, once):
    cells = once(benchmark, table2.run, False)

    avg = lambda m: float(np.mean([c.accuracy for c in cells if c.method == m]))
    bits = lambda m: float(np.mean([c.effective_bits for c in cells if c.method == m]))

    # FP16 solves every task; Turbo-4bit is near-lossless.
    assert avg("fp16") == 1.0
    assert avg("turbo_4bit") > 0.97

    # Paper rank order, 4-bit group: Turbo > GEAR > KIVI.
    assert avg("turbo_4bit") >= avg("gear_4bit") >= avg("kivi_4bit")
    # 3-bit group: Turbo-mixed > GEAR-3 > KIVI-3.
    assert avg("turbo_mixed") >= avg("gear_3bit") * 0.98
    assert avg("turbo_mixed") > avg("kivi_3bit")

    # And Turbo achieves that with the fewest stored bits.
    assert bits("turbo_4bit") < bits("kivi_4bit") < bits("gear_4bit")
    assert bits("turbo_mixed") < bits("kivi_3bit")

    print()
    print(table2.render_table(
        ["method", "avg acc %", "avg bits"],
        [
            [m, f"{avg(m) * 100:.1f}", f"{bits(m):.2f}"]
            for m in sorted({c.method for c in cells})
        ],
        title="Table 2 summary (full run)",
    ))

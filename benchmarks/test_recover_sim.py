"""Checkpointing / warm-restart benchmark.

Besides asserting the harness's headline claims, this writes
``BENCH_recover.json`` next to the repo root with the numbers an
operator would quote: wasted tokens and p99 TTFT warm vs cold under an
identical seeded crash schedule, the recompute fraction the checkpoint
leaves behind, recovery latency, and the per-method snapshot byte cost
(turbo4's ~4x persistence discount over FP16).
"""

import json
from pathlib import Path

from repro.harness import recover

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_recover.json"


def _wasted(m):
    return m.wasted_prefill_tokens + m.wasted_decode_tokens


def test_recover_full(benchmark, once):
    cells = once(benchmark, recover.run, False)
    by = {(c.method, c.run_kind): c for c in cells}
    assert len(cells) == 5

    # Conservation in every cell.
    for c in cells:
        m = c.metrics
        assert m.completed + m.failed + m.rejected + m.shed == m.total

    cold = by[("turbo4", "cold")].metrics
    warm = by[("turbo4", "warm")].metrics
    fp16 = by[("fp16", "warm")].metrics
    corrupt = by[("turbo4", "warm/corrupt")].metrics
    ops = by[("turbo4", "ops")].metrics

    # Headline 1: identical crash schedule, strictly less waste AND a
    # strictly better TTFT tail than cold retry.
    assert cold.crashes == warm.crashes > 0
    assert _wasted(warm) < _wasted(cold)
    assert warm.p99_ttft < cold.p99_ttft
    assert warm.failed == cold.failed == 0

    # Headline 2: compression pays for the checkpoints — turbo4
    # persists its resident KV far cheaper than FP16.
    assert warm.snapshot_bytes > 0
    assert fp16.snapshot_bytes > 2.0 * warm.snapshot_bytes

    # Headline 3: the corrupt-at-rest run walks the salvage ladder and
    # still loses nothing.
    assert corrupt.snapshot_corruptions > 0
    assert corrupt.failed == 0

    # Headline 4: operator fleet ops drop nothing.
    assert ops.failed == 0 and ops.drains >= 4 and ops.rolling_restarts == 1

    # Reproducibility: the same seeds regenerate identical metrics.
    again = recover.run(False)
    assert [c.metrics for c in again] == [c.metrics for c in cells]

    BENCH_PATH.write_text(
        json.dumps(
            {
                "crash_schedule": {
                    "seed": recover.FAULT_SCHEDULE.seed,
                    "crashes": warm.crashes,
                    "downtime_s": recover.FAULT_SCHEDULE.crash_downtime_s,
                },
                "recovery_latency_s": recover.FAULT_SCHEDULE.crash_downtime_s,
                "wasted_tokens_cold": _wasted(cold),
                "wasted_tokens_warm": _wasted(warm),
                "recompute_fraction": round(
                    _wasted(warm) / max(1, _wasted(cold)), 4
                ),
                "p99_ttft_cold_s": round(cold.p99_ttft, 3),
                "p99_ttft_warm_s": round(warm.p99_ttft, 3),
                "p99_ttft_win": round(cold.p99_ttft / warm.p99_ttft, 3),
                "recovered_requests": warm.recovered_requests,
                "restored_tokens": warm.restored_prefill_tokens
                + warm.restored_decode_tokens,
                "snapshot_interval_s": recover.RECOVER.snapshot_interval_s,
                "snapshot_gib_by_kv_bits": {
                    "turbo4_4.3bit": round(warm.snapshot_bytes / 2**30, 2),
                    "fp16_16bit": round(fp16.snapshot_bytes / 2**30, 2),
                },
                "snapshot_byte_ratio_fp16_over_turbo4": round(
                    fp16.snapshot_bytes / warm.snapshot_bytes, 3
                ),
                "corrupt_run": {
                    "corrupt_rate": recover.RECOVER_CORRUPT.corrupt_rate,
                    "snapshot_corruptions": corrupt.snapshot_corruptions,
                    "snapshot_salvages": corrupt.snapshot_salvages,
                    "cold_restores": corrupt.cold_restores,
                    "failed": corrupt.failed,
                },
                "fleet_ops": {
                    "drains": ops.drains,
                    "rolling_restarts": ops.rolling_restarts,
                    "failed": ops.failed,
                },
            },
            indent=2,
        )
        + "\n"
    )

    print()
    recover.main(quick=False)

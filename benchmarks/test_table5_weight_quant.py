"""Table 5 regenerator: composition with weight quantization."""

from repro.harness import table5


def test_table5_full(benchmark, once):
    rows = {r.method: r for r in once(benchmark, table5.run, False)}

    assert rows["fp16"].agreement == 1.0
    # Weight quantization alone keeps logits high-fidelity.
    assert rows["llm_int8"].logit_cosine > 0.95
    # Composition is graceful: combined KL stays within 2x the sum of the
    # individual degradations (no destructive interaction).
    for scheme in ("llm_int8", "qserve_w4a8"):
        combined = rows[f"{scheme}+turbo"].logit_kl
        parts = rows[scheme].logit_kl + rows["turbo_only"].logit_kl
        assert combined < 2.0 * parts + 1e-6

    print()
    table5.main(quick=False)

"""Design-choice ablation sweeps (beyond the paper's printed tables)."""

from repro.harness import ablations


def test_ablations_full(benchmark, once):
    res = once(benchmark, ablations.run, False)

    # SAS threshold: the LUT stays tiny (register-resident) at the paper's
    # -6, and the truncated softmax mass is already < 1% there.
    by_thr = {p.threshold: p for p in res["sas_threshold"]}
    assert by_thr[-6].lut_bytes <= 16
    assert by_thr[-6].truncation_mass < 0.01
    # Accuracy is threshold-robust in this regime (within a few points).
    accs = [p.accuracy for p in res["sas_threshold"]]
    assert max(accs) - min(accs) < 0.05

    # Buffer size: accuracy is insensitive (the buffer is exact INT8);
    # memory grows linearly.
    accs = [p.accuracy for p in res["buffer_size"]]
    assert max(accs) - min(accs) < 0.05
    sizes = [p.max_buffer_bits for p in res["buffer_size"]]
    assert sizes == sorted(sizes)

    # Two-bit fraction: a real accuracy/compression frontier — bits fall
    # and accuracy falls monotonically (small tolerance for noise).
    frontier = sorted(res["two_bit_fraction"], key=lambda p: p.fraction)
    bits = [p.effective_bits for p in frontier]
    assert all(a > b for a, b in zip(bits, bits[1:]))
    assert frontier[0].accuracy >= frontier[-1].accuracy
    # The paper's 0.5 keeps most of the accuracy at ~3.7 bits.
    mid = next(p for p in frontier if p.fraction == 0.5)
    assert mid.accuracy > frontier[-1].accuracy

    # Polynomial degree: error drops ~10x per degree; degree 3 is the
    # knee where error (<5e-4) is already below the INT8 quantization
    # noise floor while costing only 3 FMAs.
    by_deg = {p.degree: p for p in res["poly_degree"]}
    assert by_deg[3].max_error < 5e-4
    assert by_deg[2].max_error > 10 * by_deg[3].max_error

    print()
    ablations.main(quick=False)


def test_int8_vs_fp8(benchmark, once):
    """FlashQ's INT8 stage vs an FP8-E4M3 flash pipeline (FA3-style)."""
    from repro.harness.ablations import sweep_int8_vs_fp8

    points = once(benchmark, sweep_int8_vs_fp8, False)
    by = {p.method: p for p in points}
    # Turbo INT8+4bit matches or beats FP8 accuracy at ~half the bits.
    assert by["turbo_int8_4bit"].accuracy >= by["fp8_e4m3"].accuracy - 0.01
    assert by["turbo_int8_4bit"].effective_bits < 0.6 * by["fp8_e4m3"].effective_bits
    # FP8 itself is a strong method (near-lossless at ~8.7 bits).
    assert by["fp8_e4m3"].accuracy > 0.95

"""Speed-trajectory benchmark (the perf numbers this repo promises).

Runs the four pinned scenarios of :mod:`repro.perf.speed` at full size
and writes ``BENCH_speed.json`` next to the repo root: kernel wall per
token, simulated requests per wall-second for the single engine and the
cluster, and the speedups over the recorded pre-vectorization loop
implementation (:data:`repro.perf.speed.PRE_PR`).

The headline assertion is the cluster one: the batched decode path must
deliver at least 5x the pre-PR simulated-requests-per-wall-second on
the long-generation fleet scenario, after normalizing both sides by the
machine probe.
"""

import json
from pathlib import Path

from repro.perf import speed

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_speed.json"


def test_speed_trajectory(benchmark, once):
    results = once(benchmark, speed.run_speed_suite, False)

    # Normalize the recorded pre-PR numbers to this machine via the
    # probe ratio before claiming speedups.
    scale = results["calibration_s"] / speed.PRE_PR["calibration_s"]
    speedups = {
        "prefill": speed.PRE_PR["prefill_s"] * scale / results["prefill_s"],
        "decode": speed.PRE_PR["decode_s"] * scale / results["decode_s"],
        "engine": results["engine_rps"] * scale / speed.PRE_PR["engine_rps"],
        "cluster": results["cluster_rps"] * scale / speed.PRE_PR["cluster_rps"],
    }

    # Headline: >=5x simulated requests/wall-second on the cluster
    # scenario vs the pre-PR per-step loop.  The kernels must also have
    # moved, not just the simulator bookkeeping.
    assert speedups["cluster"] >= 5.0, speedups
    assert speedups["prefill"] >= 1.5, speedups
    assert speedups["decode"] >= 2.0, speedups
    assert speedups["engine"] >= 1.5, speedups

    BENCH_PATH.write_text(
        json.dumps(
            {
                "calibration_s": round(results["calibration_s"], 4),
                "prefill_s": round(results["prefill_s"], 4),
                "prefill_us_per_token": round(results["prefill_us_per_token"], 2),
                "decode_s": round(results["decode_s"], 4),
                "decode_ms_per_token": round(results["decode_ms_per_token"], 4),
                "engine_rps": round(results["engine_rps"], 1),
                "cluster_rps": round(results["cluster_rps"], 1),
                "pre_pr": speed.PRE_PR,
                "speedup_vs_pre_pr": {k: round(v, 2) for k, v in speedups.items()},
            },
            indent=2,
        )
        + "\n"
    )

"""Figure 10 regenerator: channel-wise vs token-wise quantization error."""

from repro.harness import fig10


def test_fig10_full(benchmark, once):
    rows = once(benchmark, fig10.run, False)
    # Channel-wise group quantization has strictly lower error on every
    # model and bit-width (the paper's Figure 10 conclusion).
    for r in rows:
        assert r.channelwise_error < r.tokenwise_error
    # Error shrinks with bits, both layouts.
    by = {(r.model, r.bits): r for r in rows}
    for model in ("llama3ish", "qwen2ish", "phi3ish"):
        assert by[(model, 4)].channelwise_error < by[(model, 2)].channelwise_error
        assert by[(model, 4)].tokenwise_error < by[(model, 2)].tokenwise_error

    print()
    fig10.main(quick=False)
